(** Re-entrant runtime state.

    A session is one job's complete mutable runtime state — present
    table, compiled-kernel cache, profiler, scheduler, event timelines,
    and the program-order clock — threaded explicitly so that several
    jobs can share one simulated [Machine]/[Fabric]. The machine's
    timelines are the only shared state: a session started at simulated
    time [start] begins its clock there, and contention with earlier
    sessions emerges from the timelines' availability cursors. *)

module Event = Mgacc_gpusim.Event
module Program_plan = Mgacc_translator.Program_plan
module Loc = Mgacc_minic.Loc

type t = {
  cfg : Rt_config.t;
  plans : Program_plan.t;
  profiler : Profiler.t;
  scheduler : Mgacc_sched.Scheduler.t;
  darrays : (string, Darray.t) Hashtbl.t;
  compiled : (Loc.t, Launch.compiled) Hashtbl.t;
  events : Event.t;  (** overlap mode: per-GPU data-readiness timelines *)
  seen_ranges : (Loc.t, Task_map.range array) Hashtbl.t;
      (** lazy coherence: last-observed iteration split per loop *)
  repacked : (string, unit) Hashtbl.t;
      (** fusion-mode layout transposition: arrays whose transposed device
          copy was already materialized (the repack is charged once) *)
  tenant : string;  (** owning tenant, for fleet-level accounting *)
  start : float;  (** simulated admission instant the clocks started from *)
  ledger : Mgacc_obs.Blame.t;
      (** one epoch per profiler charge, carrying the covered span ids —
          the critical-path blame attribution (docs/OBSERVABILITY.md) *)
  ev_spans : int array;
      (** overlap mode: trace span id that last advanced each GPU's event
          timeline (-1 when unknown), so gated ops can cite their producer *)
  mutable last_xfer_spans : int list;
      (** span ids recorded by the most recent transfer batch charge *)
  mutable queue_seconds : float;  (** time spent queued before admission *)
  mutable clock : float;  (** host program-order time *)
  mutable horizon : float;  (** overlap mode: makespan over everything issued *)
}

val create : ?tenant:string -> ?start:float -> Rt_config.t -> Program_plan.t -> t
(** Fresh session whose clocks start at [start] (default 0, the classic
    single-job case). Raises [Invalid_argument] on a negative start. *)

val profiler : t -> Profiler.t
val now : t -> float
val tenant : t -> string
val start : t -> float

val elapsed : t -> float
(** Simulated seconds of execution so far ([now - start]). *)

val set_queue_seconds : t -> float -> unit
val queue_seconds : t -> float

val darray_device_bytes : Darray.t -> int
(** Device bytes the darray's current placement pins (0 if unallocated). *)

val resident_bytes : t -> int
(** Total device bytes pinned by this session's present table. *)

val spill_all : t -> Darray.xfer list
(** Evict every resident darray: flush dirty data back to the host views
    (tag [":spill"]), free all device storage, and empty the present
    table. Returns the transfer descriptors for the caller to charge. *)
