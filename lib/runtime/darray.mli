(** Device-side state of one host array: the present-table entry.

    A [Darray.t] tracks where the array currently lives (unallocated,
    replicated on every GPU, or block-distributed with halos), keeps the
    actual device storage, and performs the *functional* side of every
    movement immediately while returning transfer descriptors the caller
    charges to the simulated interconnect. Placement transitions flush
    through the host copy; reloads are skipped when the placement and
    windows are unchanged (the data loader's reuse optimization for
    iterative applications). *)

open Mgacc_minic
module Interval = Mgacc_util.Interval

type xfer = { dir : Mgacc_gpusim.Fabric.direction; bytes : int; tag : string }

type tile = {
  trows : Interval.t;  (** owned row block *)
  tcols : Interval.t;  (** owned column block *)
  trow_win : Interval.t;  (** resident rows (owned + row halo) *)
  tcol_win : Interval.t;  (** resident columns (owned + column halo) *)
}
(** 2-D tile of one GPU under a [pr x pc] decomposition of a row-major
    array of [length / stride] rows. The part's buffer holds the packed
    [trow_win x tcol_win] box in row-major order. *)

type part = {
  window : Interval.t;
      (** elements resident on this GPU (owned + halo); for a tiled part
          this is only the *row hull* — use {!part_contains} for precise
          membership *)
  own : Interval.t;  (** exclusively owned block (row hull when tiled) *)
  tile : tile option;  (** present under a 2-D decomposition *)
  buf : Mgacc_gpusim.Memory.buf;
  miss : Miss_buffer.t;
}

type tile_spec = {
  pr : int;  (** row blocks *)
  pc : int;  (** column blocks; [pr * pc = num_gpus] *)
  row_left : int;  (** halo rows above the owned block *)
  row_right : int;  (** halo rows below *)
  col_left : int;  (** halo columns left of the owned block *)
  col_right : int;  (** halo columns right *)
}

type dist_spec = { stride : int; left : int; right : int; tile : tile_spec option }

type dist = {
  parts : part array;
  spec : dist_spec;
  ranges : Task_map.range array;  (** the iteration split that shaped it *)
}

type replica = {
  bufs : Mgacc_gpusim.Memory.buf array;
  mutable dirty : Dirty.t option array;  (** present only under tracking *)
  valid : Interval.Set.t array;
      (** per-GPU validity intervals (lazy coherence): the element ranges
          this replica holds current values for. Invariant: the union
          over all GPUs covers the whole array. Under eager coherence
          every entry stays the full range. *)
}

type state = Unallocated | Replicated of replica | Distributed of dist

type t = {
  name : string;
  elem : Ast.elem_ty;
  length : int;
  host : Mgacc_exec.View.t;
  mutable state : state;
  mutable device_fresh : bool;  (** device holds data newer than the host copy *)
  mutable region_depth : int;
  mutable needs_copyout : bool;
  mutable written_since_halo_sync : bool;
}

val create : Rt_config.t -> name:string -> host:Mgacc_exec.View.t -> t

val elem_bytes : t -> int
val state_name : t -> string

val ensure_replicated : Rt_config.t -> t -> dirty_tracking:bool -> xfer list
(** Make the array fully replicated and valid on every GPU, allocating and
    loading as needed (including a flush through the host on a placement
    change). Adds dirty structures when [dirty_tracking]. *)

val ensure_distributed :
  Rt_config.t -> t -> spec:dist_spec -> ranges:Task_map.range array -> xfer list
(** Make the array block-distributed for the given iteration split,
    reusing the current distribution when the windows are identical.
    Under a non-equal schedule, a live same-spec distribution whose split
    changed (a scheduler rebalance) is re-shaped with direct GPU-to-GPU
    delta transfers instead of a flush through the host. *)

val flush_to_host : Rt_config.t -> t -> xfer list
(** Bring the host copy up to date (no-op if it already is). Device
    state stays allocated and remains valid. Under lazy coherence a
    replicated array first pulls replica 0 fully valid from its peers
    (the returned list then mixes P2p pulls with the D2h copy). *)

val pull_valid : Rt_config.t -> t -> gpu:int -> want:Interval.Set.t -> xfer list
(** Make the intervals of [want] valid on replica [gpu], copying each
    stale range from a peer that holds it (tag ["<name>:pull"], one P2p
    xfer per contiguous run). No-op when the array is not replicated or
    nothing in [want] is stale. Raises if the validity invariant is
    broken (some range valid nowhere). *)

val full_set : t -> Interval.Set.t
(** The whole index range [\[0, length)] as an interval set. *)

val copy_replica_seg : t -> replica -> src:int -> dst:int -> Interval.t -> unit
(** Functional copy of one absolute-index segment between two replica
    buffers (no transfer descriptor — callers account the traffic). *)

val load_from_host : Rt_config.t -> t -> xfer list
(** Push the host copy into whatever device state exists (used by
    [update device]). No-op when unallocated. *)

val release : Rt_config.t -> t -> xfer list
(** Flush (if needed and [needs_copyout]) and free all device storage. *)

val spill_to_host : Rt_config.t -> t -> xfer list
(** Evict under memory pressure: flush dirty data back to the host view
    (descriptors retagged ["<name>:spill"]) and free all device storage.
    Clean arrays evict for free (writeback semantics). The darray stays
    usable — a later [ensure_replicated]/[ensure_distributed] reloads
    the values from the host copy. *)

val mark_device_written : t -> unit
(** Called after a kernel that wrote the array on any GPU. *)

val mark_halo_synced : t -> unit
(** Called after a halo exchange has refreshed all halo copies. *)

val buf_for : t -> gpu:int -> Mgacc_gpusim.Memory.buf
(** The device buffer backing GPU [gpu] (replica copy or partition). *)

val part_for : t -> gpu:int -> part
(** Raises [Invalid_argument] if not distributed. *)

val replica_of : t -> replica
(** Raises [Invalid_argument] if not replicated. *)

val owner_of : dist -> int -> int
(** The GPU owning a logical element index (tile-aware). *)

val offset_in_part : dist_spec -> part -> int -> int
(** Buffer offset of an absolute element index inside a part (1-D window
    offset, or packed-box offset for tiled parts). The index must be
    resident ({!part_contains}). *)

val part_contains : dist_spec -> part -> int -> bool
(** Whether the element is resident on the part (owned or halo). *)

val part_owns : dist_spec -> part -> int -> bool
(** Whether the element is exclusively owned by the part. *)

val copy_seg_part_to_part : t -> dist_spec -> src:part -> dst:part -> Interval.t -> unit
(** Functional copy of one absolute-index segment between two parts
    through {!offset_in_part}; for tiled parts the segment must stay
    within one row. No transfer descriptor — callers account traffic. *)

val copy_part_to_part : t -> src:part -> dst:part -> Interval.t -> unit
(** 1-D functional copy between two untiled parts' buffers (window
    offsets). *)
