module Kernel_plan = Mgacc_translator.Kernel_plan
module Array_config = Mgacc_analysis.Array_config
module Memory = Mgacc_gpusim.Memory
module Fabric = Mgacc_gpusim.Fabric
module Cost = Mgacc_gpusim.Cost
module Interval = Mgacc_util.Interval
open Mgacc_minic

type op_kind = Dirty_chunk | Miss_ship | Halo_segment | Red_gather | Red_bcast

type op = {
  dir : Fabric.direction;
  bytes : int;
  tag : string;
  array : string;
  kind : op_kind;
  round : int;
  group : int;
}

type gpu_kernel = { gpu : int; array : string; cost : Cost.t; label : string }

type consumer_window = Cw_none | Cw_all | Cw_windows of Interval.Set.t array

type result = {
  ops : op list;
  replays : gpu_kernel list;
  combines : gpu_kernel list;
  scans : (int * string * float) list;
  scan_seconds : float;
  coh : (string * int * int) list;
}

let xfers_of r =
  List.map (fun op -> { Darray.dir = op.dir; bytes = op.bytes; tag = op.tag }) r.ops

let gpu_kernel_costs_of r =
  List.map (fun k -> (k.gpu, k.cost, k.label)) r.replays
  @ List.map (fun k -> (k.gpu, k.cost, k.label)) r.combines

(* Host-side cost of inspecting one array's second-level bits. *)
let scan_base_seconds = 2e-6
let scan_per_chunk_seconds = 20e-9

(* Element-wise merge of GPU [src]'s dirty runs into every other replica.
   The exchanged chunks stage through system buffers on both ends (paper
   §IV-D: the receiver needs the chunk payload plus its bits to merge), so
   the staging shows up in the Fig. 9 "System" accounting. Because of the
   staging, a chunk may be in flight while the receiver's kernel still
   runs: the overlap engine only gates the send on the *source's* kernel
   finish plus this array's scan. *)
let merge_replicated cfg (da : Darray.t) ~fresh_group =
  let r = Darray.replica_of da in
  let num_gpus = cfg.Rt_config.num_gpus in
  let mem g = (Mgacc_gpusim.Machine.device cfg.Rt_config.machine g).Mgacc_gpusim.Device.memory in
  let ops = ref [] in
  let scans = ref [] in
  let staging = ref [] in
  (* One send buffer per writing GPU and one receive buffer per GPU (sized
     for the largest incoming batch): the chunks stream through these. *)
  let send_bytes = Array.make num_gpus 0 in
  for src = 0 to num_gpus - 1 do
    match r.Darray.dirty.(src) with
    | None -> ()
    | Some d -> if Dirty.any_dirty d then send_bytes.(src) <- Dirty.transfer_bytes d
  done;
  for g = 0 to num_gpus - 1 do
    if send_bytes.(g) > 0 then staging := (g, Memory.alloc_raw (mem g) `System send_bytes.(g)) :: !staging;
    let incoming =
      Array.fold_left max 0 (Array.mapi (fun src b -> if src = g then 0 else b) send_bytes)
    in
    if incoming > 0 then staging := (g, Memory.alloc_raw (mem g) `System incoming) :: !staging
  done;
  for src = 0 to num_gpus - 1 do
    match r.Darray.dirty.(src) with
    | None -> ()
    | Some d ->
        scans :=
          ( src,
            da.Darray.name,
            scan_base_seconds +. (float_of_int (Dirty.total_chunks d) *. scan_per_chunk_seconds) )
          :: !scans;
        if Dirty.any_dirty d then begin
          let bytes = Dirty.transfer_bytes d in
          let runs = Dirty.dirty_runs d in
          (* Every destination receives the same full dirty payload, so
             the per-src star is a broadcast the planner may reshape. *)
          let group = fresh_group () in
          for dst = 0 to num_gpus - 1 do
            if dst <> src then begin
              ops :=
                {
                  dir = Fabric.P2p (src, dst);
                  bytes;
                  tag = da.Darray.name ^ ":dirty";
                  array = da.Darray.name;
                  kind = Dirty_chunk;
                  round = 0;
                  group;
                }
                :: !ops;
              (* Functional merge of exactly the dirty elements. *)
              (match da.Darray.elem with
              | Ast.Edouble ->
                  let s = Memory.float_data r.Darray.bufs.(src) in
                  let t = Memory.float_data r.Darray.bufs.(dst) in
                  List.iter
                    (fun (iv : Interval.t) ->
                      Array.blit s iv.Interval.lo t iv.Interval.lo (Interval.length iv))
                    (Interval.Set.to_list runs)
              | Ast.Eint ->
                  let s = Memory.int_data r.Darray.bufs.(src) in
                  let t = Memory.int_data r.Darray.bufs.(dst) in
                  List.iter
                    (fun (iv : Interval.t) ->
                      Array.blit s iv.Interval.lo t iv.Interval.lo (Interval.length iv))
                    (Interval.Set.to_list runs))
            end
          done
        end
  done;
  (* All replicas agree again; staging buffers are released (their peak
     remains in the memory accounting). *)
  List.iter (fun (g, buf) -> Memory.free (mem g) buf) !staging;
  Array.iter (function Some d -> Dirty.clear d | None -> ()) r.Darray.dirty;
  (List.rev !ops, List.rev !scans)

(* Lazy (consumer-driven) variant: intersect each writer's exact dirty
   runs with each destination's upcoming read window and ship only the
   surviving intervals, coalesced into ranged transfers (payload = run
   lengths + an 8-byte (base, count) header per run — no chunk bits ride
   along, the receiver merges by range). Everything outside the window
   is deferred: the destination replica is marked stale there and pulls
   on demand if a later consumer shows up. Writers are processed in
   ascending GPU order exactly like the eager path, so overlapping
   writes resolve to the same final values. *)
let merge_replicated_lazy cfg (da : Darray.t) ~(window : consumer_window) ~fresh_group =
  let r = Darray.replica_of da in
  let num_gpus = cfg.Rt_config.num_gpus in
  let mem g = (Mgacc_gpusim.Machine.device cfg.Rt_config.machine g).Mgacc_gpusim.Device.memory in
  let elem_bytes = Darray.elem_bytes da in
  let ranged_bytes s =
    List.fold_left
      (fun acc (iv : Interval.t) -> acc + (Interval.length iv * elem_bytes) + 8)
      0 (Interval.Set.to_list s)
  in
  let scans = ref [] in
  let runs = Array.make num_gpus Interval.Set.empty in
  for src = 0 to num_gpus - 1 do
    match r.Darray.dirty.(src) with
    | None -> ()
    | Some d ->
        scans :=
          ( src,
            da.Darray.name,
            scan_base_seconds +. (float_of_int (Dirty.total_chunks d) *. scan_per_chunk_seconds) )
          :: !scans;
        if Dirty.any_dirty d then runs.(src) <- Dirty.dirty_runs d
  done;
  let ship = Array.make_matrix num_gpus num_gpus Interval.Set.empty in
  for src = 0 to num_gpus - 1 do
    if not (Interval.Set.is_empty runs.(src)) then
      for dst = 0 to num_gpus - 1 do
        if dst <> src then
          ship.(src).(dst) <-
            (match window with
            | Cw_none -> Interval.Set.empty
            | Cw_all -> runs.(src)
            | Cw_windows ws -> Interval.Set.inter runs.(src) ws.(dst))
      done
  done;
  (* Staging as in the eager path, sized for the ranged payloads. *)
  let staging = ref [] in
  let send_bytes =
    Array.init num_gpus (fun src ->
        Array.fold_left max 0 (Array.map ranged_bytes ship.(src)))
  in
  for g = 0 to num_gpus - 1 do
    if send_bytes.(g) > 0 then
      staging := (g, Memory.alloc_raw (mem g) `System send_bytes.(g)) :: !staging;
    let incoming =
      Array.fold_left max 0
        (Array.init num_gpus (fun src -> if src = g then 0 else ranged_bytes ship.(src).(g)))
    in
    if incoming > 0 then staging := (g, Memory.alloc_raw (mem g) `System incoming) :: !staging
  done;
  let ops = ref [] in
  let shipped = ref 0 in
  let deferred = ref 0 in
  for src = 0 to num_gpus - 1 do
    let w = runs.(src) in
    if not (Interval.Set.is_empty w) then begin
      for dst = 0 to num_gpus - 1 do
        if dst <> src then r.Darray.valid.(dst) <- Interval.Set.diff r.Darray.valid.(dst) w
      done;
      r.Darray.valid.(src) <- Interval.Set.union r.Darray.valid.(src) w;
      let w_bytes = Interval.Set.total_length w * elem_bytes in
      (* Collective-eligible only when every peer receives the full dirty
         payload (same content everywhere — a true broadcast). Per-window
         ships differ per destination and must stay point-to-point. *)
      let is_broadcast =
        let ok = ref true in
        for dst = 0 to num_gpus - 1 do
          if dst <> src && not (Interval.Set.equal ship.(src).(dst) w) then ok := false
        done;
        !ok
      in
      let group = if is_broadcast then fresh_group () else -1 in
      for dst = 0 to num_gpus - 1 do
        if dst <> src then begin
          let s = ship.(src).(dst) in
          deferred := !deferred + w_bytes - (Interval.Set.total_length s * elem_bytes);
          if not (Interval.Set.is_empty s) then begin
            let bytes = ranged_bytes s in
            shipped := !shipped + bytes;
            ops :=
              {
                dir = Fabric.P2p (src, dst);
                bytes;
                tag = da.Darray.name ^ ":dirty";
                array = da.Darray.name;
                kind = Dirty_chunk;
                round = 0;
                group;
              }
              :: !ops;
            List.iter
              (fun seg -> Darray.copy_replica_seg da r ~src ~dst seg)
              (Interval.Set.to_list s);
            r.Darray.valid.(dst) <- Interval.Set.union r.Darray.valid.(dst) s
          end
        end
      done
    end
  done;
  List.iter (fun (g, buf) -> Memory.free (mem g) buf) !staging;
  Array.iter (function Some d -> Dirty.clear d | None -> ()) r.Darray.dirty;
  (List.rev !ops, List.rev !scans, !shipped, !deferred)

(* Ship miss records to their owners and replay them there. *)
let drain_misses cfg (da : Darray.t) =
  match da.Darray.state with
  | Darray.Distributed dist ->
      let num_gpus = cfg.Rt_config.num_gpus in
      let ops = ref [] in
      let replay_counts = Array.make num_gpus 0 in
      for src = 0 to num_gpus - 1 do
        let part = dist.Darray.parts.(src) in
        if not (Miss_buffer.is_empty part.Darray.miss) then begin
          (* Group records by owner, preserving order. *)
          let per_owner = Array.make num_gpus [] in
          List.iter
            (fun (idx, v) ->
              let owner = Darray.owner_of dist idx in
              per_owner.(owner) <- (idx, v) :: per_owner.(owner))
            (Miss_buffer.entries part.Darray.miss);
          let record_bytes = 4 + Darray.elem_bytes da in
          Array.iteri
            (fun owner entries_rev ->
              let entries = List.rev entries_rev in
              if entries <> [] && owner <> src then begin
                let payload =
                  if Rt_config.lazy_coherence cfg then begin
                    (* RLE the record indices into (base, count) range
                       ships: an 8-byte header per contiguous run plus
                       one value per unique index, instead of a
                       4+elem-byte record per write. *)
                    let idxs = List.sort_uniq compare (List.map fst entries) in
                    let runs, _ =
                      List.fold_left
                        (fun (runs, prev) i ->
                          match prev with
                          | Some p when i = p + 1 -> (runs, Some i)
                          | _ -> (runs + 1, Some i))
                        (0, None) idxs
                    in
                    (runs * 8) + (List.length idxs * Darray.elem_bytes da)
                  end
                  else List.length entries * record_bytes
                in
                ops :=
                  {
                    dir = Fabric.P2p (src, owner);
                    bytes = payload;
                    tag = da.Darray.name ^ ":miss";
                    array = da.Darray.name;
                    kind = Miss_ship;
                    round = 0;
                    group = -1;
                  }
                  :: !ops;
                (* The records stage in a system buffer on the owner until
                   the replay kernel consumes them. *)
                let mem =
                  (Mgacc_gpusim.Machine.device cfg.Rt_config.machine owner)
                    .Mgacc_gpusim.Device.memory
                in
                Memory.free mem (Memory.alloc_raw mem `System payload);
                replay_counts.(owner) <- replay_counts.(owner) + List.length entries;
                (* Functional replay into the owner's partition
                   (offset through the part, which may be a 2-D tile). *)
                let opart = dist.Darray.parts.(owner) in
                let off idx = Darray.offset_in_part dist.Darray.spec opart idx in
                (match da.Darray.elem with
                | Ast.Edouble ->
                    let d = Memory.float_data opart.Darray.buf in
                    List.iter
                      (fun (idx, v) ->
                        match v with
                        | Miss_buffer.Vf f -> d.(off idx) <- f
                        | Miss_buffer.Vi _ -> assert false)
                      entries
                | Ast.Eint ->
                    let d = Memory.int_data opart.Darray.buf in
                    List.iter
                      (fun (idx, v) ->
                        match v with
                        | Miss_buffer.Vi n -> d.(off idx) <- n
                        | Miss_buffer.Vf _ -> assert false)
                      entries)
              end
              else if entries <> [] && owner = src then begin
                (* A "miss" that is actually owned locally (conservative
                   check): apply in place, no traffic. *)
                let opart = dist.Darray.parts.(owner) in
                let off idx = Darray.offset_in_part dist.Darray.spec opart idx in
                match da.Darray.elem with
                | Ast.Edouble ->
                    let d = Memory.float_data opart.Darray.buf in
                    List.iter
                      (fun (idx, v) ->
                        match v with
                        | Miss_buffer.Vf f -> d.(off idx) <- f
                        | Miss_buffer.Vi _ -> assert false)
                      entries
                | Ast.Eint ->
                    let d = Memory.int_data opart.Darray.buf in
                    List.iter
                      (fun (idx, v) ->
                        match v with
                        | Miss_buffer.Vi n -> d.(off idx) <- n
                        | Miss_buffer.Vf _ -> assert false)
                      entries
              end)
            per_owner;
          Miss_buffer.drain part.Darray.miss
        end
      done;
      let replays =
        Array.to_list replay_counts
        |> List.mapi (fun gpu n ->
               if n = 0 then None
               else begin
                 let cost = Cost.zero () in
                 cost.Cost.random_accesses <- n;
                 cost.Cost.random_bytes <- n * Darray.elem_bytes da;
                 cost.Cost.int_ops <- 2 * n;
                 Some { gpu; array = da.Darray.name; cost; label = da.Darray.name ^ ":replay" }
               end)
        |> List.filter_map Fun.id
      in
      (List.rev !ops, replays)
  | Darray.Unallocated | Darray.Replicated _ -> ([], [])

(* 2-D variant: each destination's halo is up to four rectangles around
   its owned tile (whole halo rows above and below the resident column
   window, halo columns beside the owned rows). Per rectangle row the
   columns split into maximal same-owner segments (an owner's columns are
   contiguous, so a segment ends at the owner's column-block edge); the
   per-(owner, dst) bytes aggregate into ONE wire op per pair — the
   transfer granularity a real 2-D exchange would use — while the
   functional copies happen per segment. *)
let halo_exchange_tiled cfg (da : Darray.t) dist =
  let num_gpus = cfg.Rt_config.num_gpus in
  let spec = dist.Darray.spec in
  let stride = spec.Darray.stride in
  let ops = ref [] in
  for dst = 0 to num_gpus - 1 do
    let part = dist.Darray.parts.(dst) in
    match part.Darray.tile with
    | None -> ()
    | Some tl ->
        let rects =
          [
            ( Interval.make tl.Darray.trow_win.Interval.lo tl.Darray.trows.Interval.lo,
              tl.Darray.tcol_win );
            ( Interval.make tl.Darray.trows.Interval.hi tl.Darray.trow_win.Interval.hi,
              tl.Darray.tcol_win );
            (tl.Darray.trows, Interval.make tl.Darray.tcol_win.Interval.lo tl.Darray.tcols.Interval.lo);
            (tl.Darray.trows, Interval.make tl.Darray.tcols.Interval.hi tl.Darray.tcol_win.Interval.hi);
          ]
        in
        let bytes_from = Array.make num_gpus 0 in
        List.iter
          (fun ((rows : Interval.t), (cols : Interval.t)) ->
            if not (Interval.is_empty rows || Interval.is_empty cols) then
              for r = rows.Interval.lo to rows.Interval.hi - 1 do
                let c = ref cols.Interval.lo in
                while !c < cols.Interval.hi do
                  let idx = (r * stride) + !c in
                  let owner = Darray.owner_of dist idx in
                  let oc =
                    match dist.Darray.parts.(owner).Darray.tile with
                    | Some ot -> ot.Darray.tcols
                    | None -> assert false
                  in
                  let c_hi = min cols.Interval.hi oc.Interval.hi in
                  let seg = Interval.make idx ((r * stride) + c_hi) in
                  if owner <> dst then begin
                    Darray.copy_seg_part_to_part da spec ~src:dist.Darray.parts.(owner) ~dst:part
                      seg;
                    bytes_from.(owner) <-
                      bytes_from.(owner) + (Interval.length seg * Darray.elem_bytes da)
                  end;
                  c := max c_hi (!c + 1)
                done
              done)
          rects;
        Array.iteri
          (fun owner bytes ->
            if bytes > 0 then
              ops :=
                {
                  dir = Fabric.P2p (owner, dst);
                  bytes;
                  tag = da.Darray.name ^ ":halo";
                  array = da.Darray.name;
                  kind = Halo_segment;
                  round = 0;
                  group = -1;
                }
                :: !ops)
          bytes_from
  done;
  Darray.mark_halo_synced da;
  List.rev !ops

(* Refresh halo copies from their owners after the partitions changed. *)
let halo_exchange cfg (da : Darray.t) =
  match da.Darray.state with
  | Darray.Distributed dist when dist.Darray.spec.Darray.tile <> None ->
      halo_exchange_tiled cfg da dist
  | Darray.Distributed dist ->
      let num_gpus = cfg.Rt_config.num_gpus in
      let ops = ref [] in
      for dst = 0 to num_gpus - 1 do
        let part = dist.Darray.parts.(dst) in
        let halo =
          Interval.Set.diff
            (Interval.Set.of_interval part.Darray.window)
            (Interval.Set.of_interval part.Darray.own)
        in
        List.iter
          (fun (iv : Interval.t) ->
            (* A halo interval may span several owners. *)
            let cursor = ref iv.Interval.lo in
            while !cursor < iv.Interval.hi do
              let owner = Darray.owner_of dist !cursor in
              let oown = dist.Darray.parts.(owner).Darray.own in
              let seg_hi = min iv.Interval.hi oown.Interval.hi in
              let seg = Interval.make !cursor seg_hi in
              if owner <> dst && not (Interval.is_empty seg) then begin
                ops :=
                  {
                    dir = Fabric.P2p (owner, dst);
                    bytes = Interval.length seg * Darray.elem_bytes da;
                    tag = da.Darray.name ^ ":halo";
                    array = da.Darray.name;
                    kind = Halo_segment;
                    round = 0;
                    group = -1;
                  }
                  :: !ops;
                (* Functional copy owner -> dst. *)
                let src_part = dist.Darray.parts.(owner) in
                let slo = src_part.Darray.window.Interval.lo in
                let dlo = part.Darray.window.Interval.lo in
                match da.Darray.elem with
                | Ast.Edouble ->
                    let s = Memory.float_data src_part.Darray.buf in
                    let d = Memory.float_data part.Darray.buf in
                    for i = seg.Interval.lo to seg.Interval.hi - 1 do
                      d.(i - dlo) <- s.(i - slo)
                    done
                | Ast.Eint ->
                    let s = Memory.int_data src_part.Darray.buf in
                    let d = Memory.int_data part.Darray.buf in
                    for i = seg.Interval.lo to seg.Interval.hi - 1 do
                      d.(i - dlo) <- s.(i - slo)
                    done
              end;
              cursor := max seg_hi (!cursor + 1)
            done)
          (Interval.Set.to_list halo)
      done;
      Darray.mark_halo_synced da;
      List.rev !ops
  | Darray.Unallocated | Darray.Replicated _ -> []

let reconcile cfg plan ~get_darray ~reductions ~wrote ~next_window =
  (* Accumulators are built reversed with constant-time prepends and
     reversed once at the end (the old [l := !l @ x] was quadratic in the
     number of transfers). *)
  let lazy_mode = Rt_config.lazy_coherence cfg in
  let ops = ref [] in
  let replays = ref [] in
  let combines = ref [] in
  let scans = ref [] in
  let coh = ref [] in
  (* Collective group ids, unique within this reconciliation. *)
  let gid = ref 0 in
  let fresh_group () =
    incr gid;
    !gid
  in
  let prepend_all dst xs = List.iter (fun x -> dst := x :: !dst) xs in
  let op_bytes xs = List.fold_left (fun acc (o : op) -> acc + o.bytes) 0 xs in
  List.iter
    (fun (c : Array_config.t) ->
      let name = c.Array_config.array in
      if c.Array_config.written && wrote name then begin
        let da = get_darray name in
        Darray.mark_device_written da;
        match Kernel_plan.placement_of plan name with
        | Array_config.Replicated ->
            if cfg.Rt_config.num_gpus > 1 then
              if lazy_mode then begin
                let x, s, shipped, deferred =
                  merge_replicated_lazy cfg da ~window:(next_window name) ~fresh_group
                in
                prepend_all ops x;
                prepend_all scans s;
                coh := (name, shipped, deferred) :: !coh
              end
              else begin
                let x, s = merge_replicated cfg da ~fresh_group in
                prepend_all ops x;
                prepend_all scans s;
                coh := (name, op_bytes x, 0) :: !coh
              end
        | Array_config.Distributed ->
            let x_miss, r = drain_misses cfg da in
            let x_halo = if da.Darray.written_since_halo_sync then halo_exchange cfg da else [] in
            prepend_all ops x_miss;
            prepend_all ops x_halo;
            prepend_all replays r
      end)
    plan.Kernel_plan.configs;
  (* Array reductions. *)
  List.iter
    (fun (name, red) ->
      let da = get_darray name in
      let kind_of = function Reduction.Gather -> Red_gather | Reduction.Bcast -> Red_bcast in
      (* Every broadcast edge (star or binomial tree alike) carries the
         same combined result, so all of an array's Red_bcast ops form
         one collective group. Under planned collectives, when the result
         is actually broadcast (not deferred), the gathers join the same
         group: the pair is an allreduce the planner can lower to ring
         reduce-scatter/all-gather. Otherwise gathers pass through as
         point-to-point partial ships, exactly as before. *)
      let red_group = ref (-1) in
      let shared () =
        if !red_group < 0 then red_group := fresh_group ();
        !red_group
      in
      let group_of ~allreduce = function
        | Reduction.Gather -> if allreduce then shared () else -1
        | Reduction.Bcast -> shared ()
      in
      if lazy_mode then begin
        let ship = match next_window name with Cw_none -> `Defer | _ -> `Tree in
        let m = Reduction.merge_lazy cfg red da ~ship in
        let allreduce =
          Rt_config.planned_collectives cfg
          && List.exists (fun (_, role, _) -> role = Reduction.Bcast) m.Reduction.rounds
        in
        prepend_all ops
          (List.map
             (fun ((x : Darray.xfer), role, round) ->
               {
                 dir = x.Darray.dir;
                 bytes = x.Darray.bytes;
                 tag = x.Darray.tag;
                 array = name;
                 kind = kind_of role;
                 round;
                 group = group_of ~allreduce role;
               })
             m.Reduction.rounds);
        if not (Cost.is_zero m.Reduction.lazy_combine_cost) then
          combines :=
            { gpu = 0; array = name; cost = m.Reduction.lazy_combine_cost; label = name ^ ":combine" }
            :: !combines;
        coh :=
          ( name,
            List.fold_left (fun acc ((x : Darray.xfer), _, _) -> acc + x.Darray.bytes) 0
              m.Reduction.rounds,
            m.Reduction.deferred_bytes )
          :: !coh
      end
      else begin
        let m = Reduction.merge cfg red da in
        let allreduce =
          Rt_config.planned_collectives cfg
          && List.exists (fun (_, role) -> role = Reduction.Bcast) m.Reduction.xfers
        in
        prepend_all ops
          (List.map
             (fun ((x : Darray.xfer), role) ->
               {
                 dir = x.Darray.dir;
                 bytes = x.Darray.bytes;
                 tag = x.Darray.tag;
                 array = name;
                 kind = kind_of role;
                 round = 0;
                 group = group_of ~allreduce role;
               })
             m.Reduction.xfers);
        if not (Cost.is_zero m.Reduction.combine_cost) then
          combines :=
            { gpu = 0; array = name; cost = m.Reduction.combine_cost; label = name ^ ":combine" }
            :: !combines;
        coh :=
          ( name,
            List.fold_left
              (fun acc ((x : Darray.xfer), _) -> acc + x.Darray.bytes)
              0 m.Reduction.xfers,
            0 )
          :: !coh
      end)
    reductions;
  let scans = List.rev !scans in
  {
    ops = List.rev !ops;
    replays = List.rev !replays;
    combines = List.rev !combines;
    scans;
    scan_seconds = List.fold_left (fun acc (_, _, s) -> acc +. s) 0.0 scans;
    coh = List.rev !coh;
  }
