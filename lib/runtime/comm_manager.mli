(** The inter-GPU communication manager (paper §IV-D).

    Called right after the kernels of a parallel loop complete. Three jobs:

    - {b Replicated arrays}: scan the second-level dirty bits, ship each
      dirty chunk (payload + its slice of first-level bits) from the
      writing GPU to every other replica, merge element-wise, clear the
      bits. Under single-level dirty bits the whole array ships instead.
    - {b Distributed arrays}: drain the write-miss buffers — ship the
      (index, value) records to the owning GPUs and replay them there with
      a small kernel — then refresh stale halo copies from their owners.
    - {b Reduction arrays}: fold the per-GPU partials (gather to GPU 0,
      combine, broadcast), via {!Reduction.merge}.

    All movement is returned as {e timed op descriptors}: each op names
    the producing GPU (the transfer's source endpoint), the consuming
    GPU, the array it belongs to and its dependency class, so the caller
    can gate it on the producer's own kernel-finish event instead of a
    global barrier (see docs/OVERLAP.md). Replay and combine kernels come
    back keyed by (GPU, array) so each can be gated on the arrival of
    exactly its own inputs. The barrier-mode runtime flattens the same
    descriptors into one bulk batch — the functional merges performed
    here are identical either way. *)

module Fabric = Mgacc_gpusim.Fabric
module Cost = Mgacc_gpusim.Cost

type op_kind =
  | Dirty_chunk  (** replicated-array dirty chunks, staged both ends *)
  | Miss_ship  (** write-miss records headed for their owner *)
  | Halo_segment  (** owner block -> stale halo copy *)
  | Red_gather  (** reduction partial -> GPU 0 *)
  | Red_bcast  (** combined reduction result -> replica *)

type op = {
  dir : Fabric.direction;  (** producer and consumer endpoints *)
  bytes : int;
  tag : string;
  array : string;
  kind : op_kind;
  round : int;
      (** binomial-tree broadcast round for lazy-coherence {!Red_bcast}
          ops (an edge of round [r+1] depends on its source receiving
          round [r]); 0 everywhere else *)
  group : int;
      (** collective group id: ops sharing a non-negative [group] carry
          the {e same payload} from one root to distinct destinations (a
          logical broadcast), so a planner may reshape them into ring or
          hierarchical schedules without changing what any destination
          receives. [-1] marks ops whose payload is unique to their
          destination (window-filtered ships, misses, halos, gathers) —
          those must stay point-to-point. Set only where content equality
          is structurally guaranteed, never inferred from byte counts. *)
}

type gpu_kernel = {
  gpu : int;
  array : string;
  cost : Cost.t;
  label : string;
}
(** A replay kernel (gated on the owner's incoming {!Miss_ship} arrivals)
    or a reduction combine kernel (gated on the array's {!Red_gather}
    arrivals). *)

type consumer_window =
  | Cw_none  (** no future device read: defer everything *)
  | Cw_all  (** unknown or whole-array consumer: ship all dirty runs *)
  | Cw_windows of Mgacc_util.Interval.Set.t array
      (** the next reader's predicted per-GPU read windows *)

type result = {
  ops : op list;
  replays : gpu_kernel list;
  combines : gpu_kernel list;
  scans : (int * string * float) list;
      (** per-(writing GPU, array) host-side dirty-bit scan seconds; an
          op sourced at GPU [g] for array [a] may not start before [g]'s
          kernel finish plus this scan *)
  scan_seconds : float;  (** total of [scans] (barrier mode charges it serially) *)
  coh : (string * int * int) list;
      (** per-array coherence traffic (replicated merges and reductions
          only): (array, bytes shipped, bytes deferred). Eager mode
          reports its shipped bytes with zero deferred. *)
}

val xfers_of : result -> Darray.xfer list
(** The ops flattened to plain transfer descriptors (barrier mode). *)

val gpu_kernel_costs_of : result -> (int * Cost.t * string) list
(** Replays then combines as (gpu, cost, label) tuples (barrier mode). *)

val halo_exchange : Rt_config.t -> Darray.t -> op list
(** Refresh every stale halo copy of a distributed array from its owners,
    performing the functional copies immediately and returning one
    {!Halo_segment} op per (owner, destination) segment — a halo interval
    spanning several owners yields several ops. No-op (and no ops) when
    the array is not distributed. *)

val reconcile :
  Rt_config.t ->
  Mgacc_translator.Kernel_plan.t ->
  get_darray:(string -> Darray.t) ->
  reductions:(string * Reduction.t) list ->
  wrote:(string -> bool) ->
  next_window:(string -> consumer_window) ->
  result
(** [wrote name] says whether any GPU actually executed writes to the array
    in this launch (empty iteration ranges write nothing). [next_window]
    supplies the next consumer's predicted read window per array; it is
    only consulted under lazy coherence (pass [fun _ -> Cw_all]
    otherwise). *)
