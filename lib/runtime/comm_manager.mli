(** The inter-GPU communication manager (paper §IV-D).

    Called right after the kernels of a parallel loop complete. Three jobs:

    - {b Replicated arrays}: scan the second-level dirty bits, ship each
      dirty chunk (payload + its slice of first-level bits) from the
      writing GPU to every other replica, merge element-wise, clear the
      bits. Under single-level dirty bits the whole array ships instead.
    - {b Distributed arrays}: drain the write-miss buffers — ship the
      (index, value) records to the owning GPUs and replay them there with
      a small kernel — then refresh stale halo copies from their owners.
    - {b Reduction arrays}: fold the per-GPU partials (gather to GPU 0,
      combine, broadcast), via {!Reduction.merge}.

    All movement is returned as transfer descriptors plus per-GPU kernel
    costs (replay and combine kernels) and a host-side scan overhead; the
    caller charges them to the fabric and devices. *)

type result = {
  xfers : Darray.xfer list;
  gpu_kernel_costs : (int * Mgacc_gpusim.Cost.t * string) list;
      (** (gpu, cost, label) for replay/merge kernels *)
  scan_seconds : float;  (** dirty-bit scanning bookkeeping on the host *)
}

val reconcile :
  Rt_config.t ->
  Mgacc_translator.Kernel_plan.t ->
  get_darray:(string -> Darray.t) ->
  reductions:(string * Reduction.t) list ->
  wrote:(string -> bool) ->
  result
(** [wrote name] says whether any GPU actually executed writes to the array
    in this launch (empty iteration ranges write nothing). *)
