type range = { start_ : int; stop_ : int }

let length r = max 0 (r.stop_ - r.start_)

let split ~lower ~upper ~parts =
  if parts <= 0 then invalid_arg "Task_map.split: parts <= 0";
  if upper < lower then invalid_arg "Task_map.split: upper < lower";
  let n = upper - lower in
  let base = n / parts and rem = n mod parts in
  let ranges = Array.make parts { start_ = lower; stop_ = lower } in
  let cursor = ref lower in
  for g = 0 to parts - 1 do
    let size = base + if g < rem then 1 else 0 in
    ranges.(g) <- { start_ = !cursor; stop_ = !cursor + size };
    cursor := !cursor + size
  done;
  ranges

let window r ~stride ~left ~right ~max_len =
  if length r = 0 then Mgacc_util.Interval.empty
  else
    Mgacc_util.Interval.clamp
      (Mgacc_util.Interval.make ((stride * r.start_) - left) ((stride * r.stop_) + right))
      ~lo:0 ~hi:max_len
