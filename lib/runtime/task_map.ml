type range = { start_ : int; stop_ : int }

let length r = max 0 (r.stop_ - r.start_)

let split ~lower ~upper ~parts =
  if parts <= 0 then invalid_arg "Task_map.split: parts <= 0";
  if upper < lower then invalid_arg "Task_map.split: upper < lower";
  let n = upper - lower in
  let base = n / parts and rem = n mod parts in
  let ranges = Array.make parts { start_ = lower; stop_ = lower } in
  let cursor = ref lower in
  for g = 0 to parts - 1 do
    let size = base + if g < rem then 1 else 0 in
    ranges.(g) <- { start_ = !cursor; stop_ = !cursor + size };
    cursor := !cursor + size
  done;
  ranges

let split_weighted ~lower ~upper ~weights =
  let parts = Array.length weights in
  if parts <= 0 then invalid_arg "Task_map.split_weighted: no weights";
  if upper < lower then invalid_arg "Task_map.split_weighted: upper < lower";
  Array.iter
    (fun w ->
      if (not (Float.is_finite w)) || w < 0.0 then
        invalid_arg "Task_map.split_weighted: negative or non-finite weight")
    weights;
  let total_w = Array.fold_left ( +. ) 0.0 weights in
  if total_w <= 0.0 then invalid_arg "Task_map.split_weighted: all-zero weights";
  let n = upper - lower in
  (* Largest-remainder rounding: floor every quota, then hand the leftover
     iterations to the largest fractional parts (ties to the leading GPUs,
     which makes equal weights reproduce [split] exactly). *)
  let quota = Array.map (fun w -> float_of_int n *. w /. total_w) weights in
  let sizes = Array.map (fun q -> int_of_float (Float.floor q)) quota in
  let assigned = Array.fold_left ( + ) 0 sizes in
  let order = Array.init parts (fun g -> g) in
  Array.sort
    (fun a b ->
      let fa = quota.(a) -. Float.floor quota.(a) and fb = quota.(b) -. Float.floor quota.(b) in
      if fa = fb then compare a b else compare fb fa)
    order;
  for k = 0 to n - assigned - 1 do
    let g = order.(k mod parts) in
    sizes.(g) <- sizes.(g) + 1
  done;
  let ranges = Array.make parts { start_ = lower; stop_ = lower } in
  let cursor = ref lower in
  for g = 0 to parts - 1 do
    ranges.(g) <- { start_ = !cursor; stop_ = !cursor + sizes.(g) };
    cursor := !cursor + sizes.(g)
  done;
  assert (!cursor = upper);
  ranges

let window r ~stride ~left ~right ~max_len =
  if length r = 0 then Mgacc_util.Interval.empty
  else
    Mgacc_util.Interval.clamp
      (Mgacc_util.Interval.make ((stride * r.start_) - left) ((stride * r.stop_) + right))
      ~lo:0 ~hi:max_len
