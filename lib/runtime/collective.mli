(** Topology-aware collective transfer planner (docs/MODEL.md,
    "Collectives").

    The communication manager emits logical transfer demands; broadcast
    groups among them (same payload, one root, many destinations — dirty
    replica merges, reduction result broadcasts) default to a
    point-to-point star that serializes [p-1] copies of the payload on
    the root's egress link and, on clusters, crosses the inter-node wire
    once per remote destination. This module lowers each group into a
    topology-shaped schedule instead:

    - {b ring}: the participants form a node-grouped chain; each hop
      forwards the payload to its successor, so every link moves at most
      one copy and the wire is crossed once per node boundary;
    - {b hierarchical}: on {!Mgacc_gpusim.Fabric.topology} machines, the
      root sends one copy per remote node to a leader there, and leaders
      re-broadcast locally — the star's per-destination wire crossings
      collapse to one per node;
    - {b chunked pipelining}: payloads split into fixed-size segments
      whose per-hop forwarding is [ready]-gated on (a) the same segment's
      arrival at the previous hop and (b) the previous segment clearing
      the same edge, so segment [k+1] streams while segment [k] forwards.

    Algorithm choice per group is a payload-size/latency cost model in
    the NCCL style; [--collective direct] bypasses this module entirely
    (the legacy schedules, bit for bit). Non-broadcast ops (window
    ships, misses, halos, gathers) pass through point-to-point. *)

module Fabric = Mgacc_gpusim.Fabric

type item = {
  dir : Fabric.direction;
  bytes : int;
  tag : string;
  level : int;
      (** wavefront batch index: the executor runs level [l] as one
          fabric batch after every item of levels [< l] has finished *)
  dep : int;
      (** plan index whose completion gates this item (the same
          segment's previous hop, or a tree edge's source arrival);
          [-1] = none. Always at a strictly lower level. *)
  dep2 : int;
      (** second gate: the previous segment on the same edge (serializes
          segments of one edge so downstream hops see a staggered,
          pipelined stream); [-1] = none *)
  op : Comm_manager.op;
      (** the originating logical op — for a forwarded segment, the group
          op whose destination this item delivers to, so completion
          bookkeeping (events, arrival tables) needs no new cases *)
}

type plan = item array

type stats = {
  rings : int;  (** groups lowered to ring schedules *)
  hierarchies : int;  (** groups lowered to hierarchical staging *)
  direct_groups : int;  (** eligible groups the cost model kept direct *)
  segments : int;  (** total pipelining segments across planned groups *)
  allreduces : int;
      (** reduction groups (gathers + result broadcast sharing one group
          id) recognized as allreduces and lowered to ring
          reduce-scatter/all-gather or gather + hierarchical broadcast *)
}

val no_stats : stats

val add_stats : stats -> stats -> stats

val plan : cfg:Rt_config.t -> fabric:Fabric.t -> Comm_manager.op list -> plan * stats
(** Lower the ops (in order) into an executable plan. Ops sharing a
    non-negative {!Comm_manager.op.group} are planned as one collective;
    everything else passes through as independent level-0 items. Byte
    totals are conserved: the plan carries exactly [p-1] copies of each
    group payload, however it is shaped. With [cfg.collective = Ring]
    eligible groups always take the ring; with [Auto] the cost model
    picks direct, ring or hierarchical per group. *)

val execute :
  plan:plan ->
  ?base_causes:(item -> int list) ->
  base_ready:(item -> float) ->
  run:((Fabric.request * int list) list -> (Fabric.completion * int option) list) ->
  on_complete:(item -> Fabric.completion -> int option -> unit) ->
  unit ->
  float
(** Run the plan level by level: each item's ready time is the max of
    [base_ready item] and its gates' finishes, each level is one fabric
    batch (so same-level segments contend and stagger properly), and
    [on_complete] fires per item with its completion and trace span id.
    Causal edges are threaded through: each request carries
    [base_causes item] plus the span ids of its [dep]/[dep2] gates, and
    [run] returns the span id recorded for each completion (so forwarded
    segments chain into a visible flow in the trace). Returns the max
    finish, or [neg_infinity] for an empty plan. *)

val simulate : fabric:Fabric.t -> plan:plan -> ready:float -> float
(** {!execute} against a bare fabric with a constant base ready and no
    completion callback — the planner's own cost probe and the unit
    tests' measuring stick. *)
