(** Write-miss buffers for distributed arrays (paper §IV-D-2).

    When a kernel writes an element outside its GPU's owned block, the
    translator-inserted check routes the (index, value) pair here instead.
    After the kernel, the communication manager ships the records to the
    owning GPUs and replays them there. The buffer lives in the writing
    GPU's [`System] memory; its peak size is what Fig. 9 charges. *)

type value = Vf of float | Vi of int

type t

val create : Mgacc_gpusim.Memory.t -> name:string -> elem_bytes:int -> t
val record : t -> int -> value -> unit
val count : t -> int
val is_empty : t -> bool

val entries : t -> (int * value) list
(** In recording order (replay must preserve program order per GPU). *)

val payload_bytes : t -> int
(** Bytes to ship: one (index, value) record per entry. *)

val drain : t -> unit
(** Clear after replay; releases the accounted memory. *)

val peak_bytes : t -> int
val release : t -> unit
(** Free all accounted memory (end of array lifetime). *)
