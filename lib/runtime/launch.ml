open Mgacc_minic
module Cost = Mgacc_gpusim.Cost
module Memory = Mgacc_gpusim.Memory
module View = Mgacc_exec.View
module Frame = Mgacc_exec.Frame
module Kernel_compile = Mgacc_exec.Kernel_compile
module Host_interp = Mgacc_exec.Host_interp
module Kernel_plan = Mgacc_translator.Kernel_plan
module Tile2d = Mgacc_analysis.Tile2d
module Interval = Mgacc_util.Interval

type compiled = { kc : Kernel_compile.t; param_types : (string * Ast.typ) list }

let compile_kernel plan ~param_types =
  (* Under a 2-D plan the inner column loop is restricted to
     [[__col_lo, __col_hi)], bound per GPU at launch; with the sentinel
     bounds the kernel behaves exactly like the unrestricted one. *)
  let loop, param_types =
    match plan.Kernel_plan.tile2d with
    | Some t2 ->
        ( Tile2d.restrict_columns plan.Kernel_plan.loop ~inner_var:t2.Tile2d.inner_var,
          param_types @ [ (Tile2d.col_lo_param, Ast.Tint); (Tile2d.col_hi_param, Ast.Tint) ] )
    | None -> (plan.Kernel_plan.loop, param_types)
  in
  let kc =
    Kernel_compile.compile ~loop ~params:param_types ~classify:(Kernel_plan.classifier plan)
  in
  { kc; param_types }

exception Window_violation of { array : string; index : int; gpu : int; what : string }

type gpu_run = { gpu : int; iterations : int; cost : Cost.t }

let snapshot (c : Cost.t) =
  { Cost.flops = c.Cost.flops;
    int_ops = c.Cost.int_ops;
    coalesced_bytes = c.Cost.coalesced_bytes;
    broadcast_bytes = c.Cost.broadcast_bytes;
    random_accesses = c.Cost.random_accesses;
    random_bytes = c.Cost.random_bytes;
  }

let delta ~(before : Cost.t) ~(after : Cost.t) =
  {
    Cost.flops = after.Cost.flops - before.Cost.flops;
    int_ops = after.Cost.int_ops - before.Cost.int_ops;
    coalesced_bytes = after.Cost.coalesced_bytes - before.Cost.coalesced_bytes;
    broadcast_bytes = after.Cost.broadcast_bytes - before.Cost.broadcast_bytes;
    random_accesses = after.Cost.random_accesses - before.Cost.random_accesses;
    random_bytes = after.Cost.random_bytes - before.Cost.random_bytes;
  }

(* ------------------------------------------------------------------ *)
(* Views implementing the translator's instrumentation.                *)
(* ------------------------------------------------------------------ *)

let no_reduce_f name : Ast.redop -> int -> float -> unit =
 fun _ _ _ -> invalid_arg (Printf.sprintf "array %s is not a reduction destination" name)

let no_reduce_i name : Ast.redop -> int -> int -> unit =
 fun _ _ _ -> invalid_arg (Printf.sprintf "array %s is not a reduction destination" name)

(* Replicated array on one GPU: direct access, dirty marking on writes. The
   dirty-bit instrumentation the translator inserts costs a couple of
   integer ops per write, charged to the kernel's cost record. *)
let replicated_view (da : Darray.t) ~gpu ~(dirty : Dirty.t option) ~(cost : Cost.t) =
  let buf = Darray.buf_for da ~gpu in
  let name = da.Darray.name and length = da.Darray.length in
  let mark =
    match dirty with
    | Some d ->
        fun i ->
          cost.Cost.int_ops <- cost.Cost.int_ops + 2;
          Dirty.mark d i
    | None -> fun _ -> ()
  in
  match da.Darray.elem with
  | Ast.Edouble ->
      let data = Memory.float_data buf in
      {
        View.name;
        elem = Ast.Edouble;
        length;
        get_f = (fun i -> data.(i));
        set_f =
          (fun i v ->
            data.(i) <- v;
            mark i);
        get_i = (fun _ -> invalid_arg (name ^ ": int access on double array"));
        set_i = (fun _ _ -> invalid_arg (name ^ ": int access on double array"));
        reduce_f = no_reduce_f name;
        reduce_i = no_reduce_i name;
      }
  | Ast.Eint ->
      let data = Memory.int_data buf in
      {
        View.name;
        elem = Ast.Eint;
        length;
        get_i = (fun i -> data.(i));
        set_i =
          (fun i v ->
            data.(i) <- v;
            mark i);
        get_f = (fun _ -> invalid_arg (name ^ ": double access on int array"));
        set_f = (fun _ _ -> invalid_arg (name ^ ": double access on int array"));
        reduce_f = no_reduce_f name;
        reduce_i = no_reduce_i name;
      }

(* Replicated array that is a reduction destination: reads see the
   pre-loop values; reduction updates go to the GPU's partial. *)
let reduction_view (da : Darray.t) ~gpu (red : Reduction.t) =
  let buf = Darray.buf_for da ~gpu in
  let name = da.Darray.name and length = da.Darray.length in
  let declared = Reduction.op red in
  let check op =
    if op <> declared then
      invalid_arg
        (Printf.sprintf "array %s: reduction operator mismatch (%s declared)" name
           (Ast.redop_to_string declared))
  in
  match da.Darray.elem with
  | Ast.Edouble ->
      let data = Memory.float_data buf in
      {
        View.name;
        elem = Ast.Edouble;
        length;
        get_f = (fun i -> data.(i));
        set_f = (fun _ _ -> invalid_arg (name ^ ": plain write to a reduction destination"));
        get_i = (fun _ -> invalid_arg (name ^ ": int access on double array"));
        set_i = (fun _ _ -> invalid_arg (name ^ ": int access on double array"));
        reduce_f =
          (fun op i v ->
            check op;
            Reduction.reduce_f red ~gpu i v);
        reduce_i = no_reduce_i name;
      }
  | Ast.Eint ->
      let data = Memory.int_data buf in
      {
        View.name;
        elem = Ast.Eint;
        length;
        get_i = (fun i -> data.(i));
        set_i = (fun _ _ -> invalid_arg (name ^ ": plain write to a reduction destination"));
        get_f = (fun _ -> invalid_arg (name ^ ": double access on int array"));
        set_f = (fun _ _ -> invalid_arg (name ^ ": double access on int array"));
        reduce_f = no_reduce_f name;
        reduce_i =
          (fun op i v ->
            check op;
            Reduction.reduce_i red ~gpu i v);
      }

(* 2-D variant: the part's buffer is a packed [trow_win x tcol_win] box;
   membership and offsets go through the tile-aware [Darray] helpers. The
   instrumentation cost model is identical to the 1-D view (the 2-D index
   arithmetic folds into the same address computation on real hardware). *)
let tiled_distributed_view (da : Darray.t) (part : Darray.part) ~gpu ~miss_check ~(cost : Cost.t) =
  let name = da.Darray.name and length = da.Darray.length in
  let spec =
    match da.Darray.state with Darray.Distributed d -> d.Darray.spec | _ -> assert false
  in
  let off i = Darray.offset_in_part spec part i in
  let owns i = Darray.part_owns spec part i in
  let check_read i =
    if not (Darray.part_contains spec part i) then
      raise (Window_violation { array = name; index = i; gpu; what = "read outside window" })
  in
  match da.Darray.elem with
  | Ast.Edouble ->
      let data = Memory.float_data part.Darray.buf in
      let set_f i v =
        if miss_check then begin
          cost.Cost.int_ops <- cost.Cost.int_ops + 1;
          if owns i then data.(off i) <- v
          else begin
            cost.Cost.random_accesses <- cost.Cost.random_accesses + 1;
            cost.Cost.random_bytes <- cost.Cost.random_bytes + 12;
            Miss_buffer.record part.Darray.miss i (Miss_buffer.Vf v)
          end
        end
        else if owns i then data.(off i) <- v
        else
          raise
            (Window_violation
               { array = name; index = i; gpu; what = "write outside owned tile (miss checks eliminated)" })
      in
      {
        View.name;
        elem = Ast.Edouble;
        length;
        get_f =
          (fun i ->
            check_read i;
            data.(off i));
        set_f;
        get_i = (fun _ -> invalid_arg (name ^ ": int access on double array"));
        set_i = (fun _ _ -> invalid_arg (name ^ ": int access on double array"));
        reduce_f = no_reduce_f name;
        reduce_i = no_reduce_i name;
      }
  | Ast.Eint ->
      let data = Memory.int_data part.Darray.buf in
      let set_i i v =
        if miss_check then begin
          cost.Cost.int_ops <- cost.Cost.int_ops + 1;
          if owns i then data.(off i) <- v
          else begin
            cost.Cost.random_accesses <- cost.Cost.random_accesses + 1;
            cost.Cost.random_bytes <- cost.Cost.random_bytes + 8;
            Miss_buffer.record part.Darray.miss i (Miss_buffer.Vi v)
          end
        end
        else if owns i then data.(off i) <- v
        else
          raise
            (Window_violation
               { array = name; index = i; gpu; what = "write outside owned tile (miss checks eliminated)" })
      in
      {
        View.name;
        elem = Ast.Eint;
        length;
        get_i =
          (fun i ->
            check_read i;
            data.(off i));
        set_i;
        get_f = (fun _ -> invalid_arg (name ^ ": double access on int array"));
        set_f = (fun _ _ -> invalid_arg (name ^ ": double access on int array"));
        reduce_f = no_reduce_f name;
        reduce_i = no_reduce_i name;
      }

(* Distributed array: logical indices translate into the partition; reads
   must stay in the declared window; writes are ownership-checked. When the
   check is eliminated, an out-of-block write is a directive violation. *)
let distributed_view (da : Darray.t) ~gpu ~miss_check ~(cost : Cost.t) =
  let part = Darray.part_for da ~gpu in
  let name = da.Darray.name and length = da.Darray.length in
  match part.Darray.tile with
  | Some _ -> tiled_distributed_view da part ~gpu ~miss_check ~cost
  | None ->
  let win = part.Darray.window and own = part.Darray.own in
  let lo = win.Interval.lo in
  let check_read i =
    if not (Interval.contains win i) then
      raise (Window_violation { array = name; index = i; gpu; what = "read outside window" })
  in
  match da.Darray.elem with
  | Ast.Edouble ->
      let data = Memory.float_data part.Darray.buf in
      let set_f i v =
        if miss_check then begin
          cost.Cost.int_ops <- cost.Cost.int_ops + 1;
          if Interval.contains own i then data.(i - lo) <- v
          else begin
            cost.Cost.random_accesses <- cost.Cost.random_accesses + 1;
            cost.Cost.random_bytes <- cost.Cost.random_bytes + 12;
            Miss_buffer.record part.Darray.miss i (Miss_buffer.Vf v)
          end
        end
        else if Interval.contains own i then data.(i - lo) <- v
        else raise (Window_violation { array = name; index = i; gpu; what = "write outside owned block (miss checks eliminated)" })
      in
      {
        View.name;
        elem = Ast.Edouble;
        length;
        get_f =
          (fun i ->
            check_read i;
            data.(i - lo));
        set_f;
        get_i = (fun _ -> invalid_arg (name ^ ": int access on double array"));
        set_i = (fun _ _ -> invalid_arg (name ^ ": int access on double array"));
        reduce_f = no_reduce_f name;
        reduce_i = no_reduce_i name;
      }
  | Ast.Eint ->
      let data = Memory.int_data part.Darray.buf in
      let set_i i v =
        if miss_check then begin
          cost.Cost.int_ops <- cost.Cost.int_ops + 1;
          if Interval.contains own i then data.(i - lo) <- v
          else begin
            cost.Cost.random_accesses <- cost.Cost.random_accesses + 1;
            cost.Cost.random_bytes <- cost.Cost.random_bytes + 8;
            Miss_buffer.record part.Darray.miss i (Miss_buffer.Vi v)
          end
        end
        else if Interval.contains own i then data.(i - lo) <- v
        else raise (Window_violation { array = name; index = i; gpu; what = "write outside owned block (miss checks eliminated)" })
      in
      {
        View.name;
        elem = Ast.Eint;
        length;
        get_i =
          (fun i ->
            check_read i;
            data.(i - lo));
        set_i;
        get_f = (fun _ -> invalid_arg (name ^ ": double access on int array"));
        set_f = (fun _ _ -> invalid_arg (name ^ ": double access on int array"));
        reduce_f = no_reduce_f name;
        reduce_i = no_reduce_i name;
      }

let view_for cfg plan ~gpu ~cost ~get_darray ~get_reduction name =
  let da = get_darray name in
  match get_reduction name with
  | Some red -> reduction_view da ~gpu red
  | None -> (
      match Kernel_plan.placement_of plan name with
      | Mgacc_analysis.Array_config.Replicated ->
          let dirty =
            match da.Darray.state with
            | Darray.Replicated r -> r.Darray.dirty.(gpu)
            | _ -> None
          in
          ignore cfg;
          replicated_view da ~gpu ~dirty ~cost
      | Mgacc_analysis.Array_config.Distributed ->
          distributed_view da ~gpu ~miss_check:(Kernel_plan.needs_miss_check plan name) ~cost)

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)
(* ------------------------------------------------------------------ *)

let run_on_gpus cfg ?col_bounds plan compiled ~ranges ~get_scalar ~get_darray ~get_reduction =
  let loop = plan.Kernel_plan.loop in
  let scalar_reductions = loop.Mgacc_analysis.Loop_info.scalar_reductions in
  let runs = ref [] in
  let partial_frames = ref [] in
  Array.iteri
    (fun gpu range ->
      (* Empty ranges launch nothing: no frame, no kernel record, no
         zero-length transfers. Scalar reductions stay correct because a
         missing partial folds as the identity. *)
      let iterations = Task_map.length range in
      if iterations > 0 then begin
        let frame = compiled.kc.Kernel_compile.make_frame () in
        (* Bind parameters. *)
        List.iter
          (fun (name, slot, ty) ->
            match ty with
            | Ast.Tarray _ ->
                Frame.set_view frame slot
                  (view_for cfg plan ~gpu ~cost:compiled.kc.Kernel_compile.cost ~get_darray
                     ~get_reduction name)
            | Ast.Tint when name = Tile2d.col_lo_param ->
                Frame.set_int frame slot
                  (match col_bounds with Some b -> fst b.(gpu) | None -> min_int)
            | Ast.Tint when name = Tile2d.col_hi_param ->
                Frame.set_int frame slot
                  (match col_bounds with Some b -> snd b.(gpu) | None -> max_int)
            | Ast.Tint | Ast.Tdouble -> (
                let red_op =
                  List.find_map
                    (fun (op, v) -> if v = name then Some op else None)
                    scalar_reductions
                in
                match (red_op, ty) with
                | Some op, Ast.Tdouble -> Frame.set_float frame slot (View.redop_identity_f op)
                | Some op, Ast.Tint -> Frame.set_int frame slot (View.redop_identity_i op)
                | None, Ast.Tdouble -> (
                    match get_scalar name with
                    | Host_interp.Vfloat f -> Frame.set_float frame slot f
                    | Host_interp.Vint n -> Frame.set_float frame slot (float_of_int n))
                | None, Ast.Tint -> (
                    match get_scalar name with
                    | Host_interp.Vint n -> Frame.set_int frame slot n
                    | Host_interp.Vfloat f -> Frame.set_int frame slot (int_of_float f))
                | _, (Ast.Tvoid | Ast.Tarray _) -> assert false)
            | Ast.Tvoid -> assert false)
          compiled.kc.Kernel_compile.params;
        let before = snapshot compiled.kc.Kernel_compile.cost in
        for i = range.Task_map.start_ to range.Task_map.stop_ - 1 do
          compiled.kc.Kernel_compile.run_iter frame i
        done;
        let after = snapshot compiled.kc.Kernel_compile.cost in
        runs := { gpu; iterations; cost = delta ~before ~after } :: !runs;
        partial_frames := (gpu, frame) :: !partial_frames
      end)
    ranges;
  let scalar_partials =
    List.map
      (fun (op, name) ->
        let slot_ty =
          List.find_map
            (fun (n, slot, ty) -> if n = name then Some (slot, ty) else None)
            compiled.kc.Kernel_compile.params
        in
        match slot_ty with
        | None -> (name, op, [])
        | Some (slot, ty) ->
            let values =
              List.rev_map
                (fun (_, frame) ->
                  match ty with
                  | Ast.Tdouble -> Host_interp.Vfloat (Frame.get_float frame slot)
                  | Ast.Tint -> Host_interp.Vint (Frame.get_int frame slot)
                  | _ -> assert false)
                !partial_frames
            in
            (name, op, values))
      scalar_reductions
  in
  (List.rev !runs, scalar_partials)
