(** Kernel launching: view construction, functional execution, cost capture.

    For each GPU, the compiled loop body runs over that GPU's iteration
    range against views that implement the translator's instrumentation:
    replicated writes mark dirty bits, distributed writes are ownership-
    checked and missed writes buffered, reduction updates go to the GPU's
    partial. The dynamic cost delta per GPU feeds the roofline model. *)

open Mgacc_minic

type compiled = {
  kc : Mgacc_exec.Kernel_compile.t;
  param_types : (string * Ast.typ) list;
}

val compile_kernel :
  Mgacc_translator.Kernel_plan.t ->
  param_types:(string * Ast.typ) list ->
  compiled
(** Compile the loop body with the plan's coalescing classifier. Under a
    2-D plan ([tile2d] present) the inner column loop is rewritten to
    iterate [[__col_lo, __col_hi)] and the two bounds are appended as int
    parameters, bound per GPU by {!run_on_gpus}. *)

exception Window_violation of { array : string; index : int; gpu : int; what : string }
(** A kernel accessed an element outside what the [localaccess] directive
    declared — the directive is wrong (runtime validation of the paper's
    §III-C contract that iteration [i] stays inside its window). *)

type gpu_run = {
  gpu : int;
  iterations : int;
  cost : Mgacc_gpusim.Cost.t;  (** this GPU's dynamic cost delta *)
}

val run_on_gpus :
  Rt_config.t ->
  ?col_bounds:(int * int) array ->
  Mgacc_translator.Kernel_plan.t ->
  compiled ->
  ranges:Task_map.range array ->
  get_scalar:(string -> Mgacc_exec.Host_interp.value) ->
  get_darray:(string -> Darray.t) ->
  get_reduction:(string -> Reduction.t option) ->
  gpu_run list * (string * Ast.redop * Mgacc_exec.Host_interp.value list) list
(** Execute every GPU's share functionally. Returns per-GPU costs and, per
    scalar-reduction variable, the per-GPU partial values (in GPU order)
    for the caller to fold into the host scalar. Scalar reduction
    variables are bound to the operator identity inside the kernel; other
    scalars are firstprivate copies of the host values. [col_bounds] gives
    each GPU's owned column block under a 2-D launch; omitted, the
    sentinel bounds make a tile2d kernel behave exactly like the
    unrestricted 1-D one. *)
