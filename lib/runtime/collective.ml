module Fabric = Mgacc_gpusim.Fabric

type item = {
  dir : Fabric.direction;
  bytes : int;
  tag : string;
  level : int;
  dep : int;
  dep2 : int;
  op : Comm_manager.op;
}

type plan = item array

type stats = {
  rings : int;
  hierarchies : int;
  direct_groups : int;
  segments : int;
  allreduces : int;
}

let no_stats =
  { rings = 0; hierarchies = 0; direct_groups = 0; segments = 0; allreduces = 0 }

let add_stats a b =
  {
    rings = a.rings + b.rings;
    hierarchies = a.hierarchies + b.hierarchies;
    direct_groups = a.direct_groups + b.direct_groups;
    segments = a.segments + b.segments;
    allreduces = a.allreduces + b.allreduces;
  }

(* ------------------------------------------------------------------ *)
(* Group analysis                                                      *)

type group_shape = {
  root : int;
  dsts : int list;  (* distinct, in op order *)
  payload : int;  (* bytes, identical across the group's ops *)
  op_of_dst : (int, Comm_manager.op) Hashtbl.t;
}

let endpoints (op : Comm_manager.op) =
  match op.Comm_manager.dir with
  | Fabric.P2p (s, d) -> Some (s, d)
  | Fabric.H2d _ | Fabric.D2h _ -> None

(* A group is reshapeable iff it is a well-formed broadcast: every op is
   peer-to-peer with the same byte count, destinations are distinct, and
   exactly one endpoint (the root) sends without ever receiving. Tree
   schedules qualify — sources vary but all carry the same payload. *)
let analyze (gops : Comm_manager.op list) =
  match gops with
  | [] -> None
  | first :: _ -> (
      match endpoints first with
      | None -> None
      | Some _ ->
          let payload = first.Comm_manager.bytes in
          let op_of_dst = Hashtbl.create 8 in
          let dsts = ref [] and srcs = ref [] in
          let ok = ref true in
          List.iter
            (fun (op : Comm_manager.op) ->
              match endpoints op with
              | None -> ok := false
              | Some (s, d) ->
                  if op.Comm_manager.bytes <> payload then ok := false;
                  if Hashtbl.mem op_of_dst d then ok := false
                  else begin
                    Hashtbl.replace op_of_dst d op;
                    dsts := d :: !dsts;
                    srcs := s :: !srcs
                  end)
            gops;
          let dsts = List.rev !dsts in
          let roots =
            List.sort_uniq compare !srcs
            |> List.filter (fun s -> not (Hashtbl.mem op_of_dst s))
          in
          if (not !ok) || payload <= 0 then None
          else
            match roots with
            | [ root ] -> Some { root; dsts; payload; op_of_dst }
            | _ -> None)

(* An allreduce group pairs a reduction's gathers (every member ships its
   partial to the root) with the broadcast of the combined result. It is
   reshapeable iff the gathers all target one root with equal payloads and
   the broadcast half is itself a well-formed broadcast from that root to
   exactly the gather sources — then reduce-scatter + all-gather moves the
   same 2(p-1) payload copies with every link loaded evenly. *)
type allreduce_shape = {
  bcast : group_shape;  (* root, members and payload of the result side *)
  gather_of_src : (int, Comm_manager.op) Hashtbl.t;
}

let analyze_allreduce (gops : Comm_manager.op list) =
  let gathers, rest =
    List.partition (fun (op : Comm_manager.op) -> op.Comm_manager.kind = Comm_manager.Red_gather) gops
  in
  let bcasts, other =
    List.partition (fun (op : Comm_manager.op) -> op.Comm_manager.kind = Comm_manager.Red_bcast) rest
  in
  if gathers = [] || bcasts = [] || other <> [] then None
  else
    match analyze bcasts with
    | None -> None
    | Some shape ->
        let gather_of_src = Hashtbl.create 8 in
        let ok = ref true in
        List.iter
          (fun (op : Comm_manager.op) ->
            match endpoints op with
            | Some (s, d)
              when d = shape.root && s <> shape.root
                   && op.Comm_manager.bytes = shape.payload
                   && not (Hashtbl.mem gather_of_src s) ->
                Hashtbl.replace gather_of_src s op
            | _ -> ok := false)
          gathers;
        let srcs =
          Hashtbl.fold (fun s _ acc -> s :: acc) gather_of_src [] |> List.sort compare
        in
        if !ok && srcs = List.sort compare shape.dsts then
          Some { bcast = shape; gather_of_src }
        else None

(* ------------------------------------------------------------------ *)
(* Cost model (selection only; timing comes from the simulation)       *)

let num_nodes fabric =
  match Fabric.topology fabric with
  | None -> 1
  | Some t -> (Fabric.num_gpus fabric + t.Fabric.gpus_per_node - 1) / t.Fabric.gpus_per_node

(* Node-grouped chain: root first, then destinations sorted so GPUs
   sharing the root's node come before other nodes in cyclic order —
   the chain crosses the wire once per node boundary. *)
let ring_order fabric shape =
  let nn = num_nodes fabric in
  let root_node = Fabric.node_of fabric shape.root in
  let key d = (((Fabric.node_of fabric d - root_node) + nn) mod nn, d) in
  shape.root :: List.sort (fun a b -> compare (key a) (key b)) shape.dsts

let segment_sizes payload s =
  let base = payload / s and extra = payload mod s in
  Array.init s (fun k -> base + if k < extra then 1 else 0)

(* Candidate segment counts: the configured target plus powers of two,
   never slicing below 4 KiB segments. *)
let segment_candidates (cfg : Rt_config.t) payload =
  let floor_bytes = 4096 in
  let cap = max 1 (payload / floor_bytes) in
  let target = (payload + cfg.Rt_config.collective_seg_bytes - 1) / cfg.Rt_config.collective_seg_bytes in
  [ 1; 2; 4; 8; 16; target ]
  |> List.map (fun s -> min 16 (min cap (max 1 s)))
  |> List.sort_uniq compare

(* Pipelined chain estimate: fill the pipe along every hop with one
   segment, then stream the remaining S-1 segments through the
   bottleneck hop. Each forwarded segment pays its hop latency (the
   schedule gates segment k+1 on segment k clearing the edge). *)
let ring_time fabric order payload s =
  let seg = float_of_int payload /. float_of_int s in
  let fill = ref 0.0 and slot = ref 0.0 in
  let rec hops = function
    | a :: (b :: _ as rest) ->
        let dir = Fabric.P2p (a, b) in
        let lat = Fabric.latency_of fabric dir in
        let bw = Fabric.standalone_bandwidth fabric dir in
        fill := !fill +. lat +. (seg /. bw);
        slot := Float.max !slot (lat +. (seg /. bw));
        hops rest
    | _ -> ()
  in
  hops order;
  !fill +. (float_of_int (s - 1) *. !slot)

let best_ring fabric cfg order payload =
  List.fold_left
    (fun (bs, bt) s ->
      let t = ring_time fabric order payload s in
      if t < bt then (s, t) else (bs, bt))
    (1, ring_time fabric order payload 1)
    (segment_candidates cfg payload)

(* NCCL-style ring-allreduce estimate: 2(p-1) rounds, each bounded by the
   slowest ring edge moving one payload/p chunk. The node-grouped order
   keeps the wire crossed once per node boundary per round. *)
let allreduce_ring_time fabric order payload =
  let ring = Array.of_list order in
  let p = Array.length ring in
  if p < 2 then infinity
  else begin
    let seg = float_of_int payload /. float_of_int p in
    let slot = ref 0.0 in
    for i = 0 to p - 1 do
      let dir = Fabric.P2p (ring.(i), ring.((i + 1) mod p)) in
      let lat = Fabric.latency_of fabric dir in
      let bw = Fabric.standalone_bandwidth fabric dir in
      slot := Float.max !slot (lat +. (seg /. bw))
    done;
    float_of_int (2 * (p - 1)) *. !slot
  end

(* Star estimate: every copy leaves the root's egress link back to back;
   cross-node copies additionally serialize on the node's uplink. *)
let direct_time fabric shape =
  let b = float_of_int shape.payload in
  let lat_max = ref 0.0 and egress = ref 0.0 and remote = ref 0 in
  List.iter
    (fun d ->
      let dir = Fabric.P2p (shape.root, d) in
      lat_max := Float.max !lat_max (Fabric.latency_of fabric dir);
      egress := Float.max !egress (Fabric.standalone_bandwidth fabric dir);
      if not (Fabric.same_node fabric shape.root d) then incr remote)
    shape.dsts;
  let copies = float_of_int (List.length shape.dsts) in
  let egress_time = if !egress > 0.0 then copies *. b /. !egress else infinity in
  let wire_time =
    match Fabric.topology fabric with
    | Some t when !remote > 0 -> float_of_int !remote *. b /. t.Fabric.internode_bandwidth
    | _ -> 0.0
  in
  !lat_max +. Float.max egress_time wire_time

(* Destinations bucketed per node; the root's node first, leaders are the
   smallest GPU id of each remote bucket. *)
let node_buckets fabric shape =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun d ->
      let n = Fabric.node_of fabric d in
      Hashtbl.replace tbl n (d :: (try Hashtbl.find tbl n with Not_found -> [])))
    shape.dsts;
  let root_node = Fabric.node_of fabric shape.root in
  let locals = try List.rev (Hashtbl.find tbl root_node) with Not_found -> [] in
  let remotes =
    Hashtbl.fold (fun n ds acc -> if n = root_node then acc else (n, List.rev ds) :: acc) tbl []
    |> List.sort compare
    |> List.map (fun (n, ds) -> (n, List.fold_left min (List.hd ds) ds, ds))
  in
  (locals, remotes)

(* Two-stage pipeline estimate: the wire stage pushes one copy per
   remote node through the uplink, the relay stage fans out on the widest
   node; segments stream the second behind the first. *)
let hier_time fabric cfg shape =
  match Fabric.topology fabric with
  | None -> (1, infinity)
  | Some t ->
      let locals, remotes = node_buckets fabric shape in
      if remotes = [] then (1, infinity)
      else
        let b = float_of_int shape.payload in
        let n_rem = float_of_int (List.length remotes) in
        let fanout =
          List.fold_left
            (fun m (_, _, ds) -> max m (List.length ds - 1))
            (List.length locals) remotes
        in
        let local_bw, local_lat =
          let sample =
            match locals @ List.map (fun (_, l, _) -> l) remotes with
            | d :: _ -> Fabric.P2p (shape.root, d)
            | [] -> Fabric.P2p (shape.root, shape.root)
          in
          (Fabric.standalone_bandwidth fabric sample, Fabric.latency_of fabric sample)
        in
        let wire_lat =
          (* full cross-node hop latency, matching what the fabric will
             actually charge (link latency + internode latency) *)
          match remotes with
          | (_, leader, _) :: _ -> Fabric.latency_of fabric (Fabric.P2p (shape.root, leader))
          | [] -> t.Fabric.internode_latency
        in
        let time s =
          let seg = b /. float_of_int s in
          let wire_slot = wire_lat +. (n_rem *. seg /. t.Fabric.internode_bandwidth) in
          let relay_slot =
            if fanout = 0 then 0.0
            else local_lat +. (float_of_int fanout *. seg /. local_bw)
          in
          wire_slot +. relay_slot +. (float_of_int (s - 1) *. Float.max wire_slot relay_slot)
        in
        List.fold_left
          (fun (bs, bt) s ->
            let ts = time s in
            if ts < bt then (s, ts) else (bs, bt))
          (1, time 1)
          (segment_candidates cfg shape.payload)

(* ------------------------------------------------------------------ *)
(* Schedule construction                                               *)

type builder = {
  mutable rev_items : item list;
  mutable count : int;
  mutable st : stats;
}

let push b it =
  b.rev_items <- it :: b.rev_items;
  b.count <- b.count + 1;
  b.count - 1

let passthrough b (op : Comm_manager.op) =
  ignore
    (push b
       {
         dir = op.Comm_manager.dir;
         bytes = op.Comm_manager.bytes;
         tag = op.Comm_manager.tag;
         level = 0;
         dep = -1;
         dep2 = -1;
         op;
       })

(* Keep a group's own schedule (star or binomial tree) but make its data
   dependencies explicit: a tree edge may not leave its source before the
   item that delivered the payload there has finished. *)
let direct_group b (gops : Comm_manager.op list) =
  let delivered = Hashtbl.create 8 in
  List.iter
    (fun (op : Comm_manager.op) ->
      let dep =
        match endpoints op with
        | Some (s, _) -> ( try Hashtbl.find delivered s with Not_found -> -1)
        | None -> -1
      in
      let i =
        push b
          {
            dir = op.Comm_manager.dir;
            bytes = op.Comm_manager.bytes;
            tag = op.Comm_manager.tag;
            level = op.Comm_manager.round;
            dep;
            dep2 = -1;
            op;
          }
      in
      match endpoints op with
      | Some (_, d) -> Hashtbl.replace delivered d i
      | None -> ())
    gops;
  b.st <- add_stats b.st { no_stats with direct_groups = 1 }

(* Wavefront-levelled segmented chain: segment k of hop h sits at level
   h+k, gated on the same segment's previous hop and on the previous
   segment clearing this edge. Both gates live exactly one level down,
   so every level is one independent fabric batch. *)
let ring_group b shape order s =
  let sizes = segment_sizes shape.payload s in
  let hops = List.length order - 1 in
  let idx = Array.make_matrix s (hops + 1) (-1) in
  let rec emit h = function
    | src :: (dst :: _ as rest) ->
        let op = Hashtbl.find shape.op_of_dst dst in
        for k = 0 to s - 1 do
          let dep = if h >= 2 then idx.(k).(h - 1) else -1 in
          let dep2 = if k >= 1 then idx.(k - 1).(h) else -1 in
          idx.(k).(h) <-
            push b
              {
                dir = Fabric.P2p (src, dst);
                bytes = sizes.(k);
                tag = op.Comm_manager.tag ^ ":ring";
                level = h - 1 + k;
                dep;
                dep2;
                op;
              }
        done;
        emit (h + 1) rest
    | _ -> ()
  in
  emit 1 order;
  b.st <- add_stats b.st { no_stats with rings = 1; segments = s }

(* Two-hop tree: the root feeds its local peers and one leader per remote
   node (level k for segment k); leaders re-broadcast on their node
   (level k+1, gated on the wire segment's arrival). [base_level] shifts
   the whole tree down (an allreduce runs it behind its gather stage) and
   [gate] is a plan index every root-outgoing edge must wait for. *)
let hier_group ?(base_level = 0) ?(gate = -1) b fabric shape s =
  let sizes = segment_sizes shape.payload s in
  let locals, remotes = node_buckets fabric shape in
  let chain = Hashtbl.create 8 in
  (* previous segment's item on each edge, keyed by destination *)
  let edge ~seg ~level ~dep src dst =
    let op = Hashtbl.find shape.op_of_dst dst in
    let dep2 = try Hashtbl.find chain dst with Not_found -> -1 in
    let i =
      push b
        {
          dir = Fabric.P2p (src, dst);
          bytes = sizes.(seg);
          tag = op.Comm_manager.tag ^ ":hier";
          level;
          dep;
          dep2;
          op;
        }
    in
    Hashtbl.replace chain dst i;
    i
  in
  for k = 0 to s - 1 do
    List.iter
      (fun d -> ignore (edge ~seg:k ~level:(base_level + k) ~dep:gate shape.root d))
      locals;
    List.iter
      (fun (_, leader, members) ->
        let wire = edge ~seg:k ~level:(base_level + k) ~dep:gate shape.root leader in
        List.iter
          (fun d ->
            if d <> leader then
              ignore (edge ~seg:k ~level:(base_level + k + 1) ~dep:wire leader d))
          members)
      remotes
  done;
  b.st <- add_stats b.st { no_stats with hierarchies = 1; segments = s }

(* Ring allreduce: reduce-scatter then all-gather. The payload splits
   into one chunk per participant; in reduce-scatter round r every GPU
   forwards the chunk it just accumulated to its ring successor, so after
   p-1 rounds chunk (i+1) mod p is fully reduced at participant i, and
   the p-1 all-gather rounds circulate the finished chunks the same way.
   2(p-1) rounds, each moving payload/p bytes per link — the
   bandwidth-optimal schedule star and tree allreduces can't match.
   Reduce-scatter hops are attributed to the sender's gather op (the hop
   carries its partial sums), all-gather hops to the receiver's broadcast
   op (the hop delivers its share of the result), so arrival bookkeeping
   downstream needs no new cases. *)
let allreduce_ring_group b ar order =
  let ring = Array.of_list order in
  let p = Array.length ring in
  let sizes = segment_sizes ar.bcast.payload p in
  let some_gather =
    match Hashtbl.fold (fun _ op acc -> op :: acc) ar.gather_of_src [] with
    | op :: _ -> op
    | [] -> assert false
  in
  let some_bcast = Hashtbl.find ar.bcast.op_of_dst (List.hd ar.bcast.dsts) in
  let op_rs src =
    try Hashtbl.find ar.gather_of_src src with Not_found -> some_gather
  in
  let op_ag dst = try Hashtbl.find ar.bcast.op_of_dst dst with Not_found -> some_bcast in
  let idx = Array.make_matrix (2 * (p - 1)) p (-1) in
  for r = 0 to (2 * (p - 1)) - 1 do
    let rs = r < p - 1 in
    for i = 0 to p - 1 do
      let src = ring.(i) and dst = ring.((i + 1) mod p) in
      (* chunk rotation: position i sends chunk i-r during reduce-scatter
         and chunk i+1-(r-(p-1)) during all-gather *)
      let c =
        let base = if rs then i - r else i + 1 - (r - (p - 1)) in
        ((base mod p) + p) mod p
      in
      let dep = if r >= 1 then idx.(r - 1).((i - 1 + p) mod p) else -1 in
      let op = if rs then op_rs src else op_ag dst in
      let suffix = if rs then ":rs" else ":ag" in
      idx.(r).(i) <-
        push b
          {
            dir = Fabric.P2p (src, dst);
            bytes = sizes.(c);
            tag = op.Comm_manager.tag ^ suffix;
            level = r;
            dep;
            dep2 = -1;
            op;
          }
    done
  done;
  b.st <- add_stats b.st { no_stats with allreduces = 1; segments = p }

(* Star gathers at level 0 feeding a hierarchical result broadcast: the
   wire is still crossed once per remote member on the way in, but only
   once per node on the way out. *)
let allreduce_hier_group b fabric ar s =
  let gate = ref (-1) in
  Hashtbl.iter
    (fun _ (op : Comm_manager.op) ->
      gate :=
        push b
          {
            dir = op.Comm_manager.dir;
            bytes = op.Comm_manager.bytes;
            tag = op.Comm_manager.tag;
            level = 0;
            dep = -1;
            dep2 = -1;
            op;
          })
    ar.gather_of_src;
  hier_group ~base_level:1 ~gate:!gate b fabric ar.bcast s;
  b.st <- add_stats b.st { no_stats with allreduces = 1 }

(* ------------------------------------------------------------------ *)

let plan_allreduce b cfg fabric (gops : Comm_manager.op list) =
  match analyze_allreduce gops with
  | None -> direct_group b gops
  | Some ar when List.length ar.bcast.dsts < 2 -> direct_group b gops
  | Some ar -> (
      let order = ring_order fabric ar.bcast in
      match cfg.Rt_config.collective with
      | Rt_config.Direct -> direct_group b gops
      | Rt_config.Ring -> allreduce_ring_group b ar order
      | Rt_config.Auto ->
          let t_ring = allreduce_ring_time fabric order ar.bcast.payload in
          (* the gather stage of star and hier is the same ingress star as
             [direct_time]'s egress star, by link symmetry *)
          let t_star = 2.0 *. direct_time fabric ar.bcast in
          let s_hier, t_hier_bcast = hier_time fabric cfg ar.bcast in
          let t_hier = direct_time fabric ar.bcast +. t_hier_bcast in
          if t_ring < t_star && t_ring <= t_hier then allreduce_ring_group b ar order
          else if t_hier < t_star then allreduce_hier_group b fabric ar s_hier
          else direct_group b gops)

let plan_group b cfg fabric (gops : Comm_manager.op list) =
  if
    List.exists
      (fun (op : Comm_manager.op) -> op.Comm_manager.kind = Comm_manager.Red_gather)
      gops
  then plan_allreduce b cfg fabric gops
  else
    match analyze gops with
    | None -> direct_group b gops
    | Some shape when List.length shape.dsts < 2 -> direct_group b gops
    | Some shape -> (
        let order = ring_order fabric shape in
        let s_ring, t_ring = best_ring fabric cfg order shape.payload in
        match cfg.Rt_config.collective with
        | Rt_config.Direct -> direct_group b gops
        | Rt_config.Ring -> ring_group b shape order s_ring
        | Rt_config.Auto ->
            let t_direct = direct_time fabric shape in
            let s_hier, t_hier = hier_time fabric cfg shape in
            if t_hier <= t_ring && t_hier < t_direct then hier_group b fabric shape s_hier
            else if t_ring < t_direct then ring_group b shape order s_ring
            else direct_group b gops)

let plan ~cfg ~fabric (ops : Comm_manager.op list) =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (op : Comm_manager.op) ->
      let g = op.Comm_manager.group in
      if g >= 0 then
        Hashtbl.replace groups g (op :: (try Hashtbl.find groups g with Not_found -> [])))
    ops;
  let b = { rev_items = []; count = 0; st = no_stats } in
  let emitted = Hashtbl.create 8 in
  List.iter
    (fun (op : Comm_manager.op) ->
      let g = op.Comm_manager.group in
      if g < 0 then passthrough b op
      else if not (Hashtbl.mem emitted g) then begin
        Hashtbl.replace emitted g ();
        plan_group b cfg fabric (List.rev (Hashtbl.find groups g))
      end)
    ops;
  (Array.of_list (List.rev b.rev_items), b.st)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

let execute ~plan ?(base_causes = fun _ -> []) ~base_ready ~run ~on_complete () =
  let n = Array.length plan in
  let finish = Array.make n neg_infinity in
  let span = Array.make n None in
  let max_level = Array.fold_left (fun m it -> max m it.level) (-1) plan in
  for level = 0 to max_level do
    let idxs = ref [] in
    for i = n - 1 downto 0 do
      if plan.(i).level = level then idxs := i :: !idxs
    done;
    match !idxs with
    | [] -> ()
    | idxs ->
        let reqs =
          List.map
            (fun i ->
              let it = plan.(i) in
              let ready = base_ready it in
              let ready = if it.dep >= 0 then Float.max ready finish.(it.dep) else ready in
              let ready = if it.dep2 >= 0 then Float.max ready finish.(it.dep2) else ready in
              let gate d acc = if d >= 0 then match span.(d) with Some s -> s :: acc | None -> acc else acc in
              let causes = base_causes it |> gate it.dep |> gate it.dep2 in
              ({ Fabric.direction = it.dir; bytes = it.bytes; ready; tag = it.tag }, causes))
            idxs
        in
        let comps = run reqs in
        List.iter2
          (fun i ((c : Fabric.completion), sid) ->
            finish.(i) <- c.Fabric.finish;
            span.(i) <- sid;
            on_complete plan.(i) c sid)
          idxs comps
  done;
  Array.fold_left Float.max neg_infinity finish

let simulate ~fabric ~plan ~ready =
  execute ~plan
    ~base_ready:(fun _ -> ready)
    ~run:(fun reqs -> List.map (fun c -> (c, None)) (Fabric.run_batch fabric (List.map fst reqs)))
    ~on_complete:(fun _ _ _ -> ())
    ()
