(** Task mapping: splitting a parallel iteration space over GPUs.

    The paper's prototype divides the iterations equally (§IV-B-2); the
    remainder is spread one extra iteration at a time over the leading
    GPUs, so sizes differ by at most one. *)

type range = { start_ : int; stop_ : int }
(** Half-open iteration range [\[start_, stop_)]. *)

val length : range -> int

val split : lower:int -> upper:int -> parts:int -> range array
(** [split ~lower ~upper ~parts] covers [\[lower, upper)] with [parts]
    contiguous ranges (possibly empty when there are more parts than
    iterations). Raises [Invalid_argument] when [parts <= 0] or
    [upper < lower]. *)

val split_weighted : lower:int -> upper:int -> weights:float array -> range array
(** [split_weighted ~lower ~upper ~weights] covers [\[lower, upper)] with
    one contiguous range per weight, sized by largest-remainder rounding of
    the normalized weights (the scheduler's arbitrary splits). Equal
    weights reproduce {!split} exactly. Raises [Invalid_argument] on an
    empty, negative, non-finite or all-zero weight vector, or when
    [upper < lower]. *)

val window :
  range -> stride:int -> left:int -> right:int -> max_len:int -> Mgacc_util.Interval.t
(** The element window a GPU needs for a [localaccess] array given its
    iteration range: [\[stride*start - left, stride*stop + right)] clamped
    to [\[0, max_len)]. Empty iteration ranges give empty windows. *)
