(* Re-entrant runtime state: everything one executing job mutates lives
   here, so N sessions can coexist on a shared Machine/Fabric without
   stepping on each other. Cross-session contention is modeled by the
   machine's timelines (a session's reservations push the shared [avail]
   cursors forward); everything else — present table, compiled kernels,
   profiler, clock — is private to the session. *)

module Event = Mgacc_gpusim.Event
module Program_plan = Mgacc_translator.Program_plan
module Loc = Mgacc_minic.Loc
module Interval = Mgacc_util.Interval

type t = {
  cfg : Rt_config.t;
  plans : Program_plan.t;
  profiler : Profiler.t;
  scheduler : Mgacc_sched.Scheduler.t;
  darrays : (string, Darray.t) Hashtbl.t;
  compiled : (Loc.t, Launch.compiled) Hashtbl.t;
  events : Event.t;  (** overlap mode: per-GPU data-readiness timelines *)
  seen_ranges : (Loc.t, Task_map.range array) Hashtbl.t;
      (** lazy coherence: last-observed iteration split per loop, used to
          resolve the lookahead's affine windows into concrete per-GPU
          element ranges (iterative apps re-run loops with stable bounds) *)
  repacked : (string, unit) Hashtbl.t;
      (** fusion-mode layout transposition: arrays whose transposed device
          copy was already materialized (the repack is charged once) *)
  tenant : string;  (** owning tenant, for fleet-level accounting *)
  start : float;  (** simulated admission instant the clocks started from *)
  ledger : Mgacc_obs.Blame.t;
      (** one epoch per profiler charge, carrying the covered span ids —
          the critical-path blame attribution (docs/OBSERVABILITY.md) *)
  ev_spans : int array;
      (** overlap mode: trace span id that last advanced each GPU's event
          timeline (-1 when unknown), so gated ops can cite their producer *)
  mutable last_xfer_spans : int list;
      (** span ids recorded by the most recent transfer batch charge *)
  mutable queue_seconds : float;  (** time spent queued before admission *)
  mutable clock : float;  (** host program-order time *)
  mutable horizon : float;  (** overlap mode: makespan over everything issued *)
}

let create ?(tenant = "default") ?(start = 0.0) cfg plans =
  if start < 0.0 then invalid_arg "Session.create: negative start time";
  let profiler = Profiler.create () in
  (match Program_plan.contracted_arrays plans with
  | [] -> ()
  | contracted -> Profiler.add_contracted_arrays profiler ~count:(List.length contracted));
  {
    cfg;
    plans;
    profiler;
    scheduler =
      Mgacc_sched.Scheduler.create ~machine:cfg.Rt_config.machine
        ~num_gpus:cfg.Rt_config.num_gpus ~policy:cfg.Rt_config.schedule
        ~knobs:cfg.Rt_config.sched_knobs;
    darrays = Hashtbl.create 16;
    compiled = Hashtbl.create 16;
    events = Event.create ~num_gpus:cfg.Rt_config.num_gpus;
    seen_ranges = Hashtbl.create 16;
    repacked = Hashtbl.create 4;
    tenant;
    start;
    ledger = Mgacc_obs.Blame.create ();
    ev_spans = Array.make cfg.Rt_config.num_gpus (-1);
    last_xfer_spans = [];
    queue_seconds = 0.0;
    clock = start;
    horizon = start;
  }

let profiler t = t.profiler
let now t = t.clock
let tenant t = t.tenant
let start t = t.start
let elapsed t = Float.max 0.0 (t.clock -. t.start)
let set_queue_seconds t s = t.queue_seconds <- Float.max 0.0 s
let queue_seconds t = t.queue_seconds

(* Device bytes a darray currently pins, from its logical placement (one
   full-length buffer per GPU when replicated, the window sizes when
   distributed). This is the fleet's memory-pressure ledger currency. *)
let darray_device_bytes (da : Darray.t) =
  let eb = Darray.elem_bytes da in
  match da.Darray.state with
  | Darray.Unallocated -> 0
  | Darray.Replicated r -> Array.length r.Darray.bufs * da.Darray.length * eb
  | Darray.Distributed d ->
      Array.fold_left
        (fun acc (p : Darray.part) -> acc + (Interval.length p.Darray.window * eb))
        0 d.Darray.parts

let resident_bytes t = Hashtbl.fold (fun _ da acc -> acc + darray_device_bytes da) t.darrays 0

(* Evict every resident darray: write dirty data back to the host view
   and free the device storage. Returns the transfer descriptors (tag
   ":spill") in array-name order so callers can charge them; host copies
   stay value-correct, and a later [ensure_*] transparently reloads. *)
let spill_all t =
  let entries = Hashtbl.fold (fun name da acc -> (name, da) :: acc) t.darrays [] in
  let entries = List.sort (fun (a, _) (b, _) -> String.compare a b) entries in
  let xfers = List.concat_map (fun (_, da) -> Darray.spill_to_host t.cfg da) entries in
  Hashtbl.reset t.darrays;
  xfers
