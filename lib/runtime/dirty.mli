(** Two-level dirty bits for replicated arrays (paper §IV-D-1).

    The first level holds one bit per element, set by the instrumentation
    the translator adds to every write. The second level holds one bit per
    fixed-size chunk; the communication manager reads only the chunk bits
    to decide which chunks to ship, avoiding a full-array transfer when
    writes are sparse. With the two-level mechanism disabled (ablation),
    the transfer plan degenerates to the whole array plus the whole bit
    array, which is what the paper describes for single-level dirty bits.

    Both bit levels live in the device's [`System] memory and are accounted
    there (Fig. 9). *)

type t

val create :
  Mgacc_gpusim.Memory.t ->
  elem_bytes:int ->
  length:int ->
  chunk_bytes:int ->
  two_level:bool ->
  t
(** Allocates the bitmaps on the given device memory. [chunk_bytes] is the
    payload size of one chunk (the paper uses 1 MB). *)

val mark : t -> int -> unit
(** Record a write to element [i] (sets both bit levels). *)

val any_dirty : t -> bool
val dirty_element_count : t -> int
val dirty_chunk_count : t -> int
val total_chunks : t -> int

val dirty_runs : t -> Mgacc_util.Interval.Set.t
(** Exact dirty element runs (used for the functional merge). *)

val transfer_bytes : t -> int
(** Bytes the reconciliation must ship to one peer under the configured
    mechanism: per dirty chunk its payload plus its slice of first-level
    bits (two-level), or the whole payload plus the whole bit array
    (single-level) — zero when nothing is dirty. O(1): the two-level
    figure is maintained incrementally by {!mark} as chunks turn dirty,
    not recomputed by scanning the chunk bits. *)

val clear : t -> unit
val footprint_bytes : t -> int
val free : Mgacc_gpusim.Memory.t -> t -> unit
