type t = {
  machine : string;
  variant : string;
  num_gpus : int;
  total_time : float;
  kernel_time : float;
  cpu_gpu_time : float;
  gpu_gpu_time : float;
  overhead_time : float;
  cpu_gpu_bytes : int;
  gpu_gpu_bytes : int;
  wire_bytes : int;
  collective_rings : int;
  collective_hierarchies : int;
  collective_direct_groups : int;
  collective_segments : int;
  loops : int;
  launches : int;
  rebalances : int;
  mean_imbalance : float;
  hidden_seconds : float;
  prefetch_hits : int;
  fused_kernels : int;
  contracted_arrays : int;
  relayouts : int;
  mem_user_bytes : int;
  mem_system_bytes : int;
  coh_shipped_bytes : int;
  coh_deferred_bytes : int;
  coh_pulled_bytes : int;
  coh_arrays : (string * int * int * int) list;
  queue_seconds : float;
  spills : int;
  spilled_bytes : int;
  blame : Mgacc_obs.Blame.summary option;
}

let of_profiler p ~machine ~variant ~num_gpus =
  let mem = Profiler.memory p in
  let coh_arrays = Profiler.coh_rows p in
  let sum f = List.fold_left (fun acc row -> acc + f row) 0 coh_arrays in
  {
    machine;
    variant;
    num_gpus;
    total_time = Profiler.total_time p;
    kernel_time = Profiler.kernel_time p;
    cpu_gpu_time = Profiler.cpu_gpu_time p;
    gpu_gpu_time = Profiler.gpu_gpu_time p;
    overhead_time = Profiler.overhead_time p;
    cpu_gpu_bytes = Profiler.cpu_gpu_bytes p;
    gpu_gpu_bytes = Profiler.gpu_gpu_bytes p;
    wire_bytes = Profiler.wire_bytes p;
    collective_rings = Profiler.collective_rings p;
    collective_hierarchies = Profiler.collective_hierarchies p;
    collective_direct_groups = Profiler.collective_direct_groups p;
    collective_segments = Profiler.collective_segments p;
    loops = Profiler.loops_executed p;
    launches = Profiler.kernel_launches p;
    rebalances = Profiler.rebalances p;
    mean_imbalance = Profiler.mean_imbalance p;
    hidden_seconds = Profiler.hidden_time p;
    prefetch_hits = Profiler.prefetch_hits p;
    fused_kernels = Profiler.fused_kernels p;
    contracted_arrays = Profiler.contracted_arrays p;
    relayouts = Profiler.relayouts p;
    mem_user_bytes = mem.Profiler.user_bytes;
    mem_system_bytes = mem.Profiler.system_bytes;
    coh_shipped_bytes = sum (fun (_, s, _, _) -> s);
    coh_deferred_bytes = sum (fun (_, _, d, _) -> d);
    coh_pulled_bytes = sum (fun (_, _, _, p) -> p);
    coh_arrays;
    queue_seconds = 0.0;
    spills = Profiler.spills p;
    spilled_bytes = Profiler.spilled_bytes p;
    blame = None;
  }

let host_only ~machine ~variant ~seconds =
  {
    machine;
    variant;
    num_gpus = 0;
    total_time = seconds;
    kernel_time = seconds;
    cpu_gpu_time = 0.0;
    gpu_gpu_time = 0.0;
    overhead_time = 0.0;
    cpu_gpu_bytes = 0;
    gpu_gpu_bytes = 0;
    wire_bytes = 0;
    collective_rings = 0;
    collective_hierarchies = 0;
    collective_direct_groups = 0;
    collective_segments = 0;
    loops = 0;
    launches = 0;
    rebalances = 0;
    mean_imbalance = 0.0;
    hidden_seconds = 0.0;
    prefetch_hits = 0;
    fused_kernels = 0;
    contracted_arrays = 0;
    relayouts = 0;
    mem_user_bytes = 0;
    mem_system_bytes = 0;
    coh_shipped_bytes = 0;
    coh_deferred_bytes = 0;
    coh_pulled_bytes = 0;
    coh_arrays = [];
    queue_seconds = 0.0;
    spills = 0;
    spilled_bytes = 0;
    blame = None;
  }

let with_queue t ~seconds = { t with queue_seconds = Float.max 0.0 seconds }
let with_blame t blame = { t with blame = Some blame }
let speedup_vs t ~baseline = baseline.total_time /. t.total_time
let coh_elided_bytes t = max 0 (t.coh_deferred_bytes - t.coh_pulled_bytes)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  (* The "blame" sub-object is appended only when present, so default
     reports stay byte-identical with or without observability. *)
  let blame_json =
    match t.blame with
    | None -> ""
    | Some b -> Printf.sprintf {|,"blame":%s|} (Mgacc_obs.Blame.to_json b)
  in
  (* Likewise the "fusion" sub-object appears only when the pass actually
     did something, so fuse-off reports stay byte-identical. *)
  let fusion_json =
    if t.fused_kernels = 0 && t.contracted_arrays = 0 && t.relayouts = 0 then ""
    else
      Printf.sprintf {|,"fusion":{"fused_kernels":%d,"contracted_arrays":%d,"relayouts":%d}|}
        t.fused_kernels t.contracted_arrays t.relayouts
  in
  let coh_arrays =
    String.concat ","
      (List.map
         (fun (name, shipped, deferred, pulled) ->
           Printf.sprintf {|{"name":"%s","shipped_bytes":%d,"deferred_bytes":%d,"pulled_bytes":%d}|}
             (json_escape name) shipped deferred pulled)
         t.coh_arrays)
  in
  Printf.sprintf
    {|{"machine":"%s","variant":"%s","num_gpus":%d,"total_time":%.9g,"kernel_time":%.9g,"cpu_gpu_time":%.9g,"gpu_gpu_time":%.9g,"overhead_time":%.9g,"cpu_gpu_bytes":%d,"gpu_gpu_bytes":%d,"wire_bytes":%d,"loops":%d,"launches":%d,"rebalances":%d,"mean_imbalance":%.9g,"hidden_seconds":%.9g,"prefetch_hits":%d,"mem_user_bytes":%d,"mem_system_bytes":%d,"queue_seconds":%.9g,"spills":%d,"spilled_bytes":%d,"collective":{"rings":%d,"hierarchies":%d,"direct_groups":%d,"segments":%d},"coherence":{"shipped_bytes":%d,"deferred_bytes":%d,"pulled_bytes":%d,"elided_bytes":%d,"arrays":[%s]}%s%s}|}
    (json_escape t.machine) (json_escape t.variant) t.num_gpus t.total_time t.kernel_time
    t.cpu_gpu_time t.gpu_gpu_time t.overhead_time t.cpu_gpu_bytes t.gpu_gpu_bytes t.wire_bytes
    t.loops t.launches t.rebalances t.mean_imbalance t.hidden_seconds t.prefetch_hits
    t.mem_user_bytes t.mem_system_bytes t.queue_seconds t.spills t.spilled_bytes
    t.collective_rings t.collective_hierarchies t.collective_direct_groups t.collective_segments
    t.coh_shipped_bytes t.coh_deferred_bytes t.coh_pulled_bytes (coh_elided_bytes t) coh_arrays
    fusion_json blame_json

let pp_blame ppf t =
  match t.blame with None -> () | Some b -> Mgacc_obs.Blame.pp ppf b

let pp ppf t =
  Format.fprintf ppf
    "[%s/%s] total=%.6fs (kernels=%.6f cpu-gpu=%.6f gpu-gpu=%.6f ovh=%.6f%t) mem user=%s sys=%s%t%t"
    t.machine t.variant t.total_time t.kernel_time t.cpu_gpu_time t.gpu_gpu_time t.overhead_time
    (fun ppf -> if t.hidden_seconds > 0.0 then Format.fprintf ppf " hidden=%.6f" t.hidden_seconds)
    (Mgacc_util.Bytesize.to_string t.mem_user_bytes)
    (Mgacc_util.Bytesize.to_string t.mem_system_bytes)
    (fun ppf ->
      if t.coh_deferred_bytes > 0 || t.coh_pulled_bytes > 0 then
        Format.fprintf ppf " coh shipped=%s deferred=%s pulled=%s elided=%s"
          (Mgacc_util.Bytesize.to_string t.coh_shipped_bytes)
          (Mgacc_util.Bytesize.to_string t.coh_deferred_bytes)
          (Mgacc_util.Bytesize.to_string t.coh_pulled_bytes)
          (Mgacc_util.Bytesize.to_string (coh_elided_bytes t)))
    (fun ppf ->
      if t.wire_bytes > 0 then
        Format.fprintf ppf " wire=%s" (Mgacc_util.Bytesize.to_string t.wire_bytes);
      if t.collective_rings > 0 || t.collective_hierarchies > 0 then
        Format.fprintf ppf " coll rings=%d hier=%d direct=%d segs=%d" t.collective_rings
          t.collective_hierarchies t.collective_direct_groups t.collective_segments;
      if t.fused_kernels > 0 || t.contracted_arrays > 0 || t.relayouts > 0 then
        Format.fprintf ppf " fusion fused=%d contracted=%d relayouts=%d" t.fused_kernels
          t.contracted_arrays t.relayouts;
      if t.queue_seconds > 0.0 then Format.fprintf ppf " queued=%.6fs" t.queue_seconds;
      if t.spills > 0 then
        Format.fprintf ppf " spills=%d (%s)" t.spills
          (Mgacc_util.Bytesize.to_string t.spilled_bytes))
