type t = {
  machine : string;
  variant : string;
  num_gpus : int;
  total_time : float;
  kernel_time : float;
  cpu_gpu_time : float;
  gpu_gpu_time : float;
  overhead_time : float;
  cpu_gpu_bytes : int;
  gpu_gpu_bytes : int;
  loops : int;
  launches : int;
  rebalances : int;
  mean_imbalance : float;
  hidden_seconds : float;
  prefetch_hits : int;
  mem_user_bytes : int;
  mem_system_bytes : int;
}

let of_profiler p ~machine ~variant ~num_gpus =
  let mem = Profiler.memory p in
  {
    machine;
    variant;
    num_gpus;
    total_time = Profiler.total_time p;
    kernel_time = Profiler.kernel_time p;
    cpu_gpu_time = Profiler.cpu_gpu_time p;
    gpu_gpu_time = Profiler.gpu_gpu_time p;
    overhead_time = Profiler.overhead_time p;
    cpu_gpu_bytes = Profiler.cpu_gpu_bytes p;
    gpu_gpu_bytes = Profiler.gpu_gpu_bytes p;
    loops = Profiler.loops_executed p;
    launches = Profiler.kernel_launches p;
    rebalances = Profiler.rebalances p;
    mean_imbalance = Profiler.mean_imbalance p;
    hidden_seconds = Profiler.hidden_time p;
    prefetch_hits = Profiler.prefetch_hits p;
    mem_user_bytes = mem.Profiler.user_bytes;
    mem_system_bytes = mem.Profiler.system_bytes;
  }

let host_only ~machine ~variant ~seconds =
  {
    machine;
    variant;
    num_gpus = 0;
    total_time = seconds;
    kernel_time = seconds;
    cpu_gpu_time = 0.0;
    gpu_gpu_time = 0.0;
    overhead_time = 0.0;
    cpu_gpu_bytes = 0;
    gpu_gpu_bytes = 0;
    loops = 0;
    launches = 0;
    rebalances = 0;
    mean_imbalance = 0.0;
    hidden_seconds = 0.0;
    prefetch_hits = 0;
    mem_user_bytes = 0;
    mem_system_bytes = 0;
  }

let speedup_vs t ~baseline = baseline.total_time /. t.total_time

let pp ppf t =
  Format.fprintf ppf
    "[%s/%s] total=%.6fs (kernels=%.6f cpu-gpu=%.6f gpu-gpu=%.6f ovh=%.6f%t) mem user=%s sys=%s"
    t.machine t.variant t.total_time t.kernel_time t.cpu_gpu_time t.gpu_gpu_time t.overhead_time
    (fun ppf -> if t.hidden_seconds > 0.0 then Format.fprintf ppf " hidden=%.6f" t.hidden_seconds)
    (Mgacc_util.Bytesize.to_string t.mem_user_bytes)
    (Mgacc_util.Bytesize.to_string t.mem_system_bytes)
