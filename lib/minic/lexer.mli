(** Hand-written lexer for the mini-C subset.

    [#pragma] lines are captured whole as {!Token.Tpragma} tokens; the
    pragma parser re-lexes their payload with {!tokenize_fragment}. Both
    [//] and [/* */] comments are skipped. *)

val tokenize : file:string -> string -> (Token.t * Loc.t) list
(** Lex a whole translation unit. The result ends with [Teof]. Raises
    {!Loc.Error} on malformed input (unterminated comment, bad character,
    malformed number). *)

val tokenize_fragment : file:string -> line:int -> string -> (Token.t * Loc.t) list
(** Lex a one-line fragment (a pragma payload); [#] is not special here. *)
