open Ast

let unop_str = function
  | Neg -> "-"
  | Not -> "!"
  | Bit_not -> "~"
  | Cast_int -> "(int)"
  | Cast_double -> "(double)"

let rec expr_to_string e =
  (* Fully parenthesized: simple and unambiguous for round-tripping. *)
  match e.edesc with
  | Int_lit n -> string_of_int n
  | Float_lit f ->
      let s = Printf.sprintf "%.17g" f in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
      else s ^ ".0"
  | Var v -> v
  | Index (a, i) -> Printf.sprintf "%s[%s]" a (expr_to_string i)
  | Unop (op, x) -> Printf.sprintf "(%s%s)" (unop_str op) (expr_to_string x)
  | Binop (op, x, y) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string x) (binop_to_string op) (expr_to_string y)
  | Ternary (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string a) (expr_to_string b)
  | Call (f, args) -> Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Length a -> Printf.sprintf "__length(%s)" a

let subarray_to_string (s : subarray) =
  match (s.sub_start, s.sub_len) with
  | Some a, Some b -> Printf.sprintf "%s[%s:%s]" s.sub_array (expr_to_string a) (expr_to_string b)
  | _ -> s.sub_array

let la_spec_to_string (s : localaccess_spec) =
  Printf.sprintf "%s: stride(%s, %s, %s)" s.la_array (expr_to_string s.la_stride)
    (expr_to_string s.la_left) (expr_to_string s.la_right)

let data_kind_str = function
  | Copy -> "copy"
  | Copyin -> "copyin"
  | Copyout -> "copyout"
  | Create -> "create"
  | Present -> "present"

let clause_to_string = function
  | Cdata (k, subs) ->
      Printf.sprintf "%s(%s)" (data_kind_str k) (String.concat ", " (List.map subarray_to_string subs))
  | Creduction (op, vars) ->
      Printf.sprintf "reduction(%s: %s)" (redop_to_string op) (String.concat ", " vars)
  | Cgang None -> "gang"
  | Cgang (Some n) -> Printf.sprintf "gang(%d)" n
  | Cworker None -> "worker"
  | Cworker (Some n) -> Printf.sprintf "worker(%d)" n
  | Cvector None -> "vector"
  | Cvector (Some n) -> Printf.sprintf "vector(%d)" n
  | Cindependent -> "independent"
  | Clocalaccess specs ->
      Printf.sprintf "localaccess(%s)" (String.concat ", " (List.map la_spec_to_string specs))
  | Cif cond -> Printf.sprintf "if(%s)" (expr_to_string cond)

let directive_to_string = function
  | Dparallel_loop cs ->
      String.concat " " ("acc parallel loop" :: List.map clause_to_string cs)
  | Ddata cs -> String.concat " " ("acc data" :: List.map clause_to_string cs)
  | Denter_data cs -> String.concat " " ("acc enter data" :: List.map clause_to_string cs)
  | Dexit_data cs -> String.concat " " ("acc exit data" :: List.map clause_to_string cs)
  | Dupdate_host subs ->
      Printf.sprintf "acc update host(%s)" (String.concat ", " (List.map subarray_to_string subs))
  | Dupdate_device subs ->
      Printf.sprintf "acc update device(%s)" (String.concat ", " (List.map subarray_to_string subs))
  | Dlocalaccess specs ->
      Printf.sprintf "acc localaccess(%s)" (String.concat ", " (List.map la_spec_to_string specs))
  | Dreduction_to_array { rta_op; rta_array } ->
      Printf.sprintf "acc reductiontoarray(%s: %s)" (redop_to_string rta_op) rta_array

let assign_op_str = function
  | Set -> "="
  | Add_set -> "+="
  | Sub_set -> "-="
  | Mul_set -> "*="
  | Div_set -> "/="

let lvalue_to_string = function
  | Lvar v -> v
  | Lindex (a, i) -> Printf.sprintf "%s[%s]" a (expr_to_string i)

(* A control-flow body parsed from "{ ... }" is a one-element [Sblock]
   list; print its contents directly so printing reaches a fixpoint. *)
let flatten_body = function [ { sdesc = Sblock inner; _ } ] -> inner | body -> body

let rec stmt_to_string ?(indent = 0) s =
  let pad = String.make indent ' ' in
  let block body = stmts_to_string ~indent:(indent + 2) (flatten_body body) in
  match s.sdesc with
  | Sdecl (t, name, None) -> Printf.sprintf "%s%s %s;" pad (typ_to_string t) name
  | Sdecl (t, name, Some e) ->
      Printf.sprintf "%s%s %s = %s;" pad (typ_to_string t) name (expr_to_string e)
  | Sarray_decl (elem, name, len) ->
      let ty = match elem with Eint -> "int" | Edouble -> "double" in
      Printf.sprintf "%s%s %s[%s];" pad ty name (expr_to_string len)
  | Sassign (lv, op, e) ->
      Printf.sprintf "%s%s %s %s;" pad (lvalue_to_string lv) (assign_op_str op) (expr_to_string e)
  | Sincr (lv, 1) -> Printf.sprintf "%s%s++;" pad (lvalue_to_string lv)
  | Sincr (lv, _) -> Printf.sprintf "%s%s--;" pad (lvalue_to_string lv)
  | Sexpr e -> Printf.sprintf "%s%s;" pad (expr_to_string e)
  | Sif (c, then_, []) ->
      Printf.sprintf "%sif (%s) {\n%s\n%s}" pad (expr_to_string c) (block then_) pad
  | Sif (c, then_, else_) ->
      Printf.sprintf "%sif (%s) {\n%s\n%s} else {\n%s\n%s}" pad (expr_to_string c) (block then_)
        pad (block else_) pad
  | Swhile (c, body) ->
      Printf.sprintf "%swhile (%s) {\n%s\n%s}" pad (expr_to_string c) (block body) pad
  | Sfor (hdr, body) ->
      let part = function
        | None -> ""
        | Some s ->
            let str = stmt_to_string ~indent:0 s in
            (* Strip the trailing ';' of the rendered sub-statement. *)
            if String.length str > 0 && str.[String.length str - 1] = ';' then
              String.sub str 0 (String.length str - 1)
            else str
      in
      Printf.sprintf "%sfor (%s; %s; %s) {\n%s\n%s}" pad (part hdr.for_init)
        (match hdr.for_cond with None -> "" | Some e -> expr_to_string e)
        (part hdr.for_update) (block body) pad
  | Sreturn None -> pad ^ "return;"
  | Sreturn (Some e) -> Printf.sprintf "%sreturn %s;" pad (expr_to_string e)
  | Sbreak -> pad ^ "break;"
  | Scontinue -> pad ^ "continue;"
  | Sblock body -> Printf.sprintf "%s{\n%s\n%s}" pad (block body) pad
  | Spragma (d, inner) ->
      Printf.sprintf "%s#pragma %s\n%s" pad (directive_to_string d) (stmt_to_string ~indent inner)

and stmts_to_string ~indent body =
  String.concat "\n" (List.map (stmt_to_string ~indent) body)

let func_to_string (f : func) =
  let param (p : param) =
    match p.param_ty with
    | Tarray Eint -> Printf.sprintf "int %s[]" p.param_name
    | Tarray Edouble -> Printf.sprintf "double %s[]" p.param_name
    | t -> Printf.sprintf "%s %s" (typ_to_string t) p.param_name
  in
  Printf.sprintf "%s %s(%s) {\n%s\n}" (typ_to_string f.fret) f.fname
    (String.concat ", " (List.map param f.fparams))
    (stmts_to_string ~indent:2 f.fbody)

let program_to_string (p : program) =
  String.concat "\n\n" (List.map func_to_string p.funcs) ^ "\n"
