type t =
  | Tint_lit of int
  | Tfloat_lit of float
  | Tident of string
  | Tkw of string
  | Tpunct of string
  | Tpragma of string
  | Teof

let equal a b = a = b

let to_string = function
  | Tint_lit n -> string_of_int n
  | Tfloat_lit f -> string_of_float f
  | Tident s -> s
  | Tkw s -> s
  | Tpunct s -> s
  | Tpragma s -> "#pragma " ^ s
  | Teof -> "<eof>"

let keywords =
  [ "int"; "double"; "float"; "void"; "if"; "else"; "for"; "while"; "return"; "break"; "continue" ]
