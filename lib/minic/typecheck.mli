(** Static checking of mini-C programs.

    Verifies scoping, arity, numeric typing (with C-style implicit
    int/double conversion), loop-only [break]/[continue], and the
    well-formedness of directives: data clauses must name arrays in scope,
    scalar reductions must name scalars, [localaccess] and
    [reductiontoarray] must name arrays, a parallel-loop directive must
    annotate a [for] statement, and [reductiontoarray] must annotate an
    assignment into the named array. Raises {!Loc.Error} on violation. *)

val check_program : Ast.program -> unit

val type_of_expr : (string -> Ast.typ option) -> Ast.expr -> Ast.typ
(** [type_of_expr lookup e] types a single expression given a variable
    environment; exposed for the analysis passes and tests. *)
