type t = { name : string; arity : int; result : Ast.typ; int_args : bool; flops : int }

let d name arity flops = { name; arity; result = Ast.Tdouble; int_args = false; flops }
let i name arity flops = { name; arity; result = Ast.Tint; int_args = true; flops }

let all =
  [
    d "sqrt" 1 4;
    d "fabs" 1 1;
    d "exp" 1 8;
    d "log" 1 8;
    d "pow" 2 12;
    d "sin" 1 8;
    d "cos" 1 8;
    d "floor" 1 1;
    d "ceil" 1 1;
    d "fmin" 2 1;
    d "fmax" 2 1;
    i "abs" 1 1;
    i "min" 2 1;
    i "max" 2 1;
  ]

let find name = List.find_opt (fun b -> b.name = name) all
let is_builtin name = find name <> None

let apply_double name args =
  match (name, args) with
  | "sqrt", [ x ] -> sqrt x
  | "fabs", [ x ] -> Float.abs x
  | "exp", [ x ] -> exp x
  | "log", [ x ] -> log x
  | "pow", [ x; y ] -> Float.pow x y
  | "sin", [ x ] -> sin x
  | "cos", [ x ] -> cos x
  | "floor", [ x ] -> floor x
  | "ceil", [ x ] -> ceil x
  | "fmin", [ x; y ] -> Float.min x y
  | "fmax", [ x; y ] -> Float.max x y
  | _ -> invalid_arg (Printf.sprintf "Builtins.apply_double: %s/%d" name (List.length args))

let apply_int name args =
  match (name, args) with
  | "abs", [ x ] -> abs x
  | "min", [ x; y ] -> min x y
  | "max", [ x; y ] -> max x y
  | _ -> invalid_arg (Printf.sprintf "Builtins.apply_int: %s/%d" name (List.length args))
