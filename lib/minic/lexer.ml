type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
  allow_pragma : bool;
}

let loc st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let peek2 st = if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
      let start = loc st in
      advance st;
      advance st;
      let rec find () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            find ()
        | None, _ -> Loc.error start "unterminated comment"
      in
      find ();
      skip_ws_and_comments st
  | _ -> ()

let lex_number st =
  let start_loc = loc st in
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float = ref false in
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      is_float := true;
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | Some '.', _ ->
      is_float := true;
      advance st
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      if not (match peek st with Some c -> is_digit c | None -> false) then
        Loc.error start_loc "malformed exponent";
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Token.Tfloat_lit f
    | None -> Loc.error start_loc "malformed float literal %S" text
  else
    match int_of_string_opt text with
    | Some n -> Token.Tint_lit n
    | None -> Loc.error start_loc "malformed int literal %S" text

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  if List.mem text Token.keywords then Token.Tkw text else Token.Tident text

(* Multi-character punctuation, longest first. *)
let puncts3 = [ "<<="; ">>=" ]
let puncts2 =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-="; "*="; "/="; "%="; "++"; "--" ]
let puncts1 =
  [ "+"; "-"; "*"; "/"; "%"; "="; "<"; ">"; "!"; "~"; "&"; "|"; "^"; "?"; ":"; ";"; ","; "("; ")";
    "["; "]"; "{"; "}"; "." ]

let lex_punct st =
  let rest = String.length st.src - st.pos in
  let try_list n candidates =
    if rest >= n then begin
      let s = String.sub st.src st.pos n in
      if List.mem s candidates then begin
        for _ = 1 to n do
          advance st
        done;
        Some (Token.Tpunct s)
      end
      else None
    end
    else None
  in
  match try_list 3 puncts3 with
  | Some t -> t
  | None -> (
      match try_list 2 puncts2 with
      | Some t -> t
      | None -> (
          match try_list 1 puncts1 with
          | Some t -> t
          | None -> Loc.error (loc st) "unexpected character %C" st.src.[st.pos]))

let lex_pragma_line st =
  (* At '#'. Consume to end of line; strip the leading "pragma". *)
  let start_loc = loc st in
  advance st;
  let start = st.pos in
  while peek st <> None && peek st <> Some '\n' do
    advance st
  done;
  let line = String.trim (String.sub st.src start (st.pos - start)) in
  let prefix = "pragma" in
  if String.length line >= String.length prefix && String.sub line 0 (String.length prefix) = prefix
  then Token.Tpragma (String.trim (String.sub line 6 (String.length line - 6)))
  else Loc.error start_loc "only #pragma preprocessor lines are supported"

let run st =
  let tokens = ref [] in
  let rec go () =
    skip_ws_and_comments st;
    let l = loc st in
    match peek st with
    | None -> tokens := (Token.Teof, l) :: !tokens
    | Some '#' when st.allow_pragma ->
        tokens := (lex_pragma_line st, l) :: !tokens;
        go ()
    | Some c when is_digit c ->
        tokens := (lex_number st, l) :: !tokens;
        go ()
    | Some c when is_ident_start c ->
        tokens := (lex_ident st, l) :: !tokens;
        go ()
    | Some '.' when (match peek2 st with Some c -> is_digit c | None -> false) ->
        tokens := (lex_number st, l) :: !tokens;
        go ()
    | Some _ ->
        tokens := (lex_punct st, l) :: !tokens;
        go ()
  in
  go ();
  List.rev !tokens

let tokenize ~file src = run { src; file; pos = 0; line = 1; bol = 0; allow_pragma = true }

let tokenize_fragment ~file ~line src =
  run { src; file; pos = 0; line; bol = 0; allow_pragma = false }
