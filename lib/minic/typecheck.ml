open Ast

let is_numeric = function Tint | Tdouble -> true | Tvoid | Tarray _ -> false

let unify_numeric loc a b =
  match (a, b) with
  | Tint, Tint -> Tint
  | (Tdouble | Tint), (Tdouble | Tint) -> Tdouble
  | _ -> Loc.error loc "expected numeric operands, got %s and %s" (typ_to_string a) (typ_to_string b)

let rec type_of_expr lookup e =
  match e.edesc with
  | Int_lit _ -> Tint
  | Float_lit _ -> Tdouble
  | Var v -> (
      match lookup v with
      | Some t -> t
      | None -> Loc.error e.eloc "undeclared variable %s" v)
  | Length a -> (
      match lookup a with
      | Some (Tarray _) -> Tint
      | Some t -> Loc.error e.eloc "__length of non-array %s (%s)" a (typ_to_string t)
      | None -> Loc.error e.eloc "undeclared array %s" a)
  | Index (a, idx) -> (
      let it = type_of_expr lookup idx in
      if it <> Tint then Loc.error idx.eloc "array index must be int, got %s" (typ_to_string it);
      match lookup a with
      | Some (Tarray Eint) -> Tint
      | Some (Tarray Edouble) -> Tdouble
      | Some t -> Loc.error e.eloc "indexing non-array %s (%s)" a (typ_to_string t)
      | None -> Loc.error e.eloc "undeclared array %s" a)
  | Unop (op, x) -> (
      let t = type_of_expr lookup x in
      match op with
      | Neg ->
          if not (is_numeric t) then Loc.error e.eloc "negation of %s" (typ_to_string t);
          t
      | Not ->
          if not (is_numeric t) then Loc.error e.eloc "logical not of %s" (typ_to_string t);
          Tint
      | Bit_not ->
          if t <> Tint then Loc.error e.eloc "bitwise not of %s" (typ_to_string t);
          Tint
      | Cast_int ->
          if not (is_numeric t) then Loc.error e.eloc "cast of %s" (typ_to_string t);
          Tint
      | Cast_double ->
          if not (is_numeric t) then Loc.error e.eloc "cast of %s" (typ_to_string t);
          Tdouble)
  | Binop (op, x, y) -> (
      let tx = type_of_expr lookup x and ty = type_of_expr lookup y in
      match op with
      | Add | Sub | Mul | Div -> unify_numeric e.eloc tx ty
      | Mod | Band | Bor | Bxor | Shl | Shr ->
          if tx <> Tint || ty <> Tint then
            Loc.error e.eloc "integer operator %s applied to %s, %s" (binop_to_string op)
              (typ_to_string tx) (typ_to_string ty);
          Tint
      | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor ->
          ignore (unify_numeric e.eloc tx ty);
          Tint)
  | Ternary (c, a, b) ->
      let tc = type_of_expr lookup c in
      if not (is_numeric tc) then Loc.error c.eloc "condition must be numeric";
      unify_numeric e.eloc (type_of_expr lookup a) (type_of_expr lookup b)
  | Call (name, args) -> (
      let arg_types = List.map (type_of_expr lookup) args in
      match Builtins.find name with
      | Some b ->
          if List.length args <> b.arity then
            Loc.error e.eloc "builtin %s expects %d arguments, got %d" name b.arity
              (List.length args);
          List.iter
            (fun t ->
              if not (is_numeric t) then
                Loc.error e.eloc "builtin %s applied to %s" name (typ_to_string t))
            arg_types;
          b.result
      | None -> Loc.error e.eloc "call to unknown function %s (checked separately)" name)

(* Function-aware typing: user calls resolve against the program. *)
let type_of_expr_in (prog : program) lookup e =
  let rec go e =
    match e.edesc with
    | Call (name, args) when not (Builtins.is_builtin name) -> (
        match find_func prog name with
        | None -> Loc.error e.eloc "call to undefined function %s" name
        | Some f ->
            if List.length args <> List.length f.fparams then
              Loc.error e.eloc "function %s expects %d arguments, got %d" name
                (List.length f.fparams) (List.length args);
            List.iter2
              (fun (p : param) arg ->
                let ta = go arg in
                match (p.param_ty, ta) with
                | Tarray ea, Tarray eb when ea = eb -> ()
                | Tarray _, _ | _, Tarray _ ->
                    Loc.error arg.eloc "argument %s of %s: array type mismatch" p.param_name name
                | expected, actual ->
                    if not (is_numeric expected && is_numeric actual) then
                      Loc.error arg.eloc "argument %s of %s: %s vs %s" p.param_name name
                        (typ_to_string expected) (typ_to_string actual))
              f.fparams args;
            f.fret)
    | Index (a, idx) ->
        (* Retype the index through [go] so nested user calls are resolved. *)
        let it = go idx in
        if it <> Tint then Loc.error idx.eloc "array index must be int";
        type_of_expr lookup { e with edesc = Index (a, { idx with edesc = Int_lit 0 }) }
    | Unop (op, x) ->
        ignore (go x);
        type_of_expr (fun v -> lookup v) { e with edesc = Unop (op, dummy_of x (go x)) }
    | Binop (op, x, y) ->
        let tx = go x and ty = go y in
        type_of_expr lookup { e with edesc = Binop (op, dummy_of x tx, dummy_of y ty) }
    | Ternary (c, a, b) ->
        let _ = go c and ta = go a and tb = go b in
        type_of_expr lookup { e with edesc = Ternary (dummy_of c Tint, dummy_of a ta, dummy_of b tb) }
    | _ -> type_of_expr lookup e
  and dummy_of orig t =
    (* A placeholder expression with a known type, standing in for an
       already-typed subexpression. *)
    match t with
    | Tint -> { orig with edesc = Int_lit 0 }
    | Tdouble -> { orig with edesc = Float_lit 0.0 }
    | Tvoid | Tarray _ -> orig
  in
  go e

type env = { prog : program; scopes : (string, typ) Hashtbl.t list ref; ret : typ }

let push env = env.scopes := Hashtbl.create 8 :: !(env.scopes)
let pop env = match !(env.scopes) with [] -> () | _ :: rest -> env.scopes := rest

let lookup env v =
  let rec go = function
    | [] -> None
    | scope :: rest -> ( match Hashtbl.find_opt scope v with Some t -> Some t | None -> go rest)
  in
  go !(env.scopes)

let declare env loc v t =
  match !(env.scopes) with
  | [] -> assert false
  | scope :: _ ->
      if Hashtbl.mem scope v then Loc.error loc "redeclaration of %s" v;
      Hashtbl.replace scope v t

let check_expr env e = type_of_expr_in env.prog (lookup env) e

let check_array_named env loc name =
  match lookup env name with
  | Some (Tarray _) -> ()
  | Some t -> Loc.error loc "directive names %s which is %s, not an array" name (typ_to_string t)
  | None -> Loc.error loc "directive names undeclared array %s" name

let check_subarray env loc (s : subarray) =
  check_array_named env loc s.sub_array;
  let check_int label = function
    | None -> ()
    | Some e ->
        let t = check_expr env e in
        if t <> Tint then Loc.error e.eloc "subarray %s bound must be int" label
  in
  check_int "start" s.sub_start;
  check_int "length" s.sub_len

let check_la_spec env loc (s : localaccess_spec) =
  check_array_named env loc s.la_array;
  List.iter
    (fun e ->
      let t = check_expr env e in
      if t <> Tint then Loc.error e.eloc "localaccess parameters must be int")
    [ s.la_stride; s.la_left; s.la_right ]

let check_clause env loc = function
  | Cdata (_, subs) -> List.iter (check_subarray env loc) subs
  | Creduction (_, vars) ->
      List.iter
        (fun v ->
          match lookup env v with
          | Some (Tint | Tdouble) -> ()
          | Some t -> Loc.error loc "scalar reduction on %s of type %s" v (typ_to_string t)
          | None -> Loc.error loc "reduction names undeclared variable %s" v)
        vars
  | Cgang _ | Cworker _ | Cvector _ | Cindependent -> ()
  | Cif cond ->
      let t = check_expr env cond in
      if not (is_numeric t) then Loc.error cond.eloc "if clause condition must be numeric"
  | Clocalaccess specs -> List.iter (check_la_spec env loc) specs

let rec strip_pragmas s = match s.sdesc with Spragma (_, inner) -> strip_pragmas inner | _ -> s

let check_directive env loc d ~(annotated : stmt) =
  match d with
  | Dparallel_loop clauses -> (
      List.iter (check_clause env loc) clauses;
      match (strip_pragmas annotated).sdesc with
      | Sfor _ -> ()
      | _ -> Loc.error loc "parallel loop directive must annotate a for statement")
  | Ddata clauses | Denter_data clauses | Dexit_data clauses ->
      List.iter (check_clause env loc) clauses
  | Dupdate_host subs | Dupdate_device subs -> List.iter (check_subarray env loc) subs
  | Dlocalaccess specs -> (
      List.iter (check_la_spec env loc) specs;
      match (strip_pragmas annotated).sdesc with
      | Sfor _ -> ()
      | _ -> Loc.error loc "localaccess directive must annotate a (parallel) for loop")
  | Dreduction_to_array { rta_array; _ } -> (
      check_array_named env loc rta_array;
      match (strip_pragmas annotated).sdesc with
      | Sassign (Lindex (a, _), _, _) when a = rta_array -> ()
      | Sassign _ ->
          Loc.error loc "reductiontoarray must annotate an assignment into array %s" rta_array
      | _ -> Loc.error loc "reductiontoarray must annotate an assignment statement")

let rec check_stmt env ~in_loop s =
  match s.sdesc with
  | Sdecl (t, name, init) -> (
      if not (is_numeric t) then
        Loc.error s.sloc "scalar declaration of %s has type %s" name (typ_to_string t);
      (match init with
      | None -> ()
      | Some e ->
          let te = check_expr env e in
          if not (is_numeric te) then Loc.error e.eloc "initializer of %s is %s" name (typ_to_string te));
      declare env s.sloc name t)
  | Sarray_decl (elem, name, len) ->
      let tl = check_expr env len in
      if tl <> Tint then Loc.error len.eloc "array length must be int";
      declare env s.sloc name (Tarray elem)
  | Sassign (lv, _, e) -> (
      let te = check_expr env e in
      if not (is_numeric te) then Loc.error e.eloc "assigned value is %s" (typ_to_string te);
      match lv with
      | Lvar v -> (
          match lookup env v with
          | Some (Tint | Tdouble) -> ()
          | Some t -> Loc.error s.sloc "assignment to %s of type %s" v (typ_to_string t)
          | None -> Loc.error s.sloc "assignment to undeclared variable %s" v)
      | Lindex (a, idx) ->
          check_array_named env s.sloc a;
          let ti = check_expr env idx in
          if ti <> Tint then Loc.error idx.eloc "array index must be int")
  | Sincr (lv, _) ->
      check_stmt env ~in_loop
        { s with sdesc = Sassign (lv, Add_set, { edesc = Int_lit 1; eloc = s.sloc }) }
  | Sexpr e -> ignore (check_expr env e)
  | Sif (c, then_, else_) ->
      ignore (check_expr env c);
      push env;
      List.iter (check_stmt env ~in_loop) then_;
      pop env;
      push env;
      List.iter (check_stmt env ~in_loop) else_;
      pop env
  | Swhile (c, body) ->
      ignore (check_expr env c);
      push env;
      List.iter (check_stmt env ~in_loop:true) body;
      pop env
  | Sfor (hdr, body) ->
      push env;
      Option.iter (check_stmt env ~in_loop) hdr.for_init;
      Option.iter (fun e -> ignore (check_expr env e)) hdr.for_cond;
      Option.iter (check_stmt env ~in_loop) hdr.for_update;
      List.iter (check_stmt env ~in_loop:true) body;
      pop env
  | Sreturn None ->
      if env.ret <> Tvoid then Loc.error s.sloc "return without value in non-void function"
  | Sreturn (Some e) ->
      if env.ret = Tvoid then Loc.error s.sloc "return with value in void function";
      let t = check_expr env e in
      if not (is_numeric t) then Loc.error e.eloc "returned value is %s" (typ_to_string t)
  | Sbreak -> if not in_loop then Loc.error s.sloc "break outside loop"
  | Scontinue -> if not in_loop then Loc.error s.sloc "continue outside loop"
  | Sblock body ->
      push env;
      List.iter (check_stmt env ~in_loop) body;
      pop env
  | Spragma (d, inner) ->
      check_directive env s.sloc d ~annotated:inner;
      check_stmt env ~in_loop inner

let check_func prog (f : func) =
  let env = { prog; scopes = ref []; ret = f.fret } in
  push env;
  List.iter (fun (p : param) -> declare env f.floc p.param_name p.param_ty) f.fparams;
  push env;
  List.iter (check_stmt env ~in_loop:false) f.fbody;
  pop env;
  pop env

let check_program prog =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (f : func) ->
      if Hashtbl.mem seen f.fname then Loc.error f.floc "duplicate function %s" f.fname;
      Hashtbl.replace seen f.fname ())
    prog.funcs;
  List.iter (check_func prog) prog.funcs
