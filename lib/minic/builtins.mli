(** Builtin math functions callable from mini-C (host code and kernels).

    Double builtins mirror the C math library names the benchmark sources
    use; integer builtins cover the index arithmetic helpers. The [flops]
    figure is the cost charged per call by the timing model (transcendental
    functions cost more than one FLOP on both CPUs and GPUs). *)

type t = {
  name : string;
  arity : int;
  result : Ast.typ;  (** [Tint] or [Tdouble] *)
  int_args : bool;  (** arguments are ints (else doubles) *)
  flops : int;  (** arithmetic cost charged per call *)
}

val find : string -> t option
val all : t list
val is_builtin : string -> bool

val apply_double : string -> float list -> float
(** Evaluate a double builtin. Raises [Invalid_argument] on unknown name or
    arity mismatch. *)

val apply_int : string -> int list -> int
