(** Abstract syntax of the mini-C subset with OpenACC directives.

    Directive payloads (clauses, subarrays, localaccess windows) are part of
    the AST because their arguments are expressions evaluated in the host
    environment. The two extension directives proposed by the paper —
    [localaccess] and [reductiontoarray] — appear alongside the standard
    OpenACC ones. *)

type elem_ty = Eint | Edouble

type typ = Tvoid | Tint | Tdouble | Tarray of elem_ty

type unop =
  | Neg
  | Not
  | Bit_not
  | Cast_int  (** (int)e *)
  | Cast_double  (** (double)e *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor
  | Band | Bor | Bxor | Shl | Shr

type expr = { edesc : edesc; eloc : Loc.t }

and edesc =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr  (** a\[e\] — arrays are one-dimensional *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ternary of expr * expr * expr
  | Call of string * expr list  (** builtin math or user function *)
  | Length of string  (** __length(a): number of elements of array [a] *)

type lvalue = Lvar of string | Lindex of string * expr

type assign_op = Set | Add_set | Sub_set | Mul_set | Div_set

(** {1 Directives} *)

type redop = Rplus | Rmul | Rmax | Rmin

type subarray = { sub_array : string; sub_start : expr option; sub_len : expr option }
(** OpenACC subarray [a\[start:len\]]; both bounds omitted means the whole
    array. *)

type data_kind = Copy | Copyin | Copyout | Create | Present

type localaccess_spec = {
  la_array : string;
  la_stride : expr;  (** elements consumed per iteration *)
  la_left : expr;  (** extra elements readable below the window *)
  la_right : expr;  (** extra elements readable above the window *)
}
(** Iteration [i] may read indices
    [la_stride*i - la_left .. la_stride*(i+1) - 1 + la_right] (paper
    §III-C). *)

type clause =
  | Cdata of data_kind * subarray list
  | Creduction of redop * string list  (** scalar reduction *)
  | Cgang of int option
  | Cworker of int option
  | Cvector of int option
  | Clocalaccess of localaccess_spec list
  | Cindependent
  | Cif of expr
      (** [if(cond)] on a parallel loop: offload only when the condition is
          non-zero at runtime, else execute on the host *)

type directive =
  | Dparallel_loop of clause list  (** [#pragma acc parallel loop ...] (or [kernels loop]) *)
  | Ddata of clause list  (** [#pragma acc data ...] *)
  | Denter_data of clause list
      (** [#pragma acc enter data ...]: executable, opens an unstructured
          data lifetime *)
  | Dexit_data of clause list  (** [#pragma acc exit data ...] *)
  | Dupdate_host of subarray list
  | Dupdate_device of subarray list
  | Dlocalaccess of localaccess_spec list
      (** standalone [#pragma acc localaccess(...)]; attaches to the
          parallel loop that follows *)
  | Dreduction_to_array of { rta_op : redop; rta_array : string }
      (** [#pragma acc reductiontoarray(op: a)]; annotates the next
          statement, whose destination index may be dynamic *)

(** {1 Statements and programs} *)

type stmt = { sdesc : sdesc; sloc : Loc.t }

and sdesc =
  | Sdecl of typ * string * expr option  (** scalar declaration *)
  | Sarray_decl of elem_ty * string * expr  (** [double a\[n\];] host allocation *)
  | Sassign of lvalue * assign_op * expr
  | Sincr of lvalue * int  (** [x++] / [x--] as a statement *)
  | Sexpr of expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of for_header * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Spragma of directive * stmt

and for_header = { for_init : stmt option; for_cond : expr option; for_update : stmt option }

type param = { param_name : string; param_ty : typ }

type func = {
  fname : string;
  fret : typ;
  fparams : param list;
  fbody : stmt list;
  floc : Loc.t;
}

type program = { funcs : func list; source_name : string }

val find_func : program -> string -> func option
val redop_to_string : redop -> string
val binop_to_string : binop -> string
val typ_to_string : typ -> string
val elem_ty_size : elem_ty -> int
(** Bytes per element: 4 for int, 8 for double. *)
