open Ast

(* Two-dimensional arrays are desugared at parse time: [double a[n][m]]
   becomes a 1-D array of n*m elements, and [a[i][j]] becomes
   [a[i*m + j]] with the declared inner dimension substituted in. The
   analyses then see ordinary affine/symbolic-linear subscripts, and a
   [localaccess(a: stride(m, ...))] window distributes the matrix by
   whole rows — the generalization the paper's §VI sketches. [dims2]
   records the inner dimension of every 2-D array in the function being
   parsed. *)
type p = {
  mutable toks : (Token.t * Loc.t) list;
  dims2 : (string, expr) Hashtbl.t;
}

let peek p = match p.toks with [] -> (Token.Teof, Loc.dummy) | t :: _ -> t
let peek_tok p = fst (peek p)
let cur_loc p = snd (peek p)

let next p =
  match p.toks with
  | [] -> (Token.Teof, Loc.dummy)
  | t :: rest ->
      p.toks <- rest;
      t

let skip p = ignore (next p)

let fail p fmt =
  let loc = cur_loc p in
  Format.kasprintf
    (fun msg -> Loc.error loc "%s (found %s)" msg (Token.to_string (peek_tok p)))
    fmt

let expect_punct p s =
  match next p with
  | Token.Tpunct s', _ when s' = s -> ()
  | tok, loc -> Loc.error loc "expected %S, found %s" s (Token.to_string tok)

let expect_ident p =
  match next p with
  | Token.Tident s, _ -> s
  | tok, loc -> Loc.error loc "expected identifier, found %s" (Token.to_string tok)

let eat_punct p s =
  match peek_tok p with
  | Token.Tpunct s' when s' = s ->
      skip p;
      true
  | _ -> false

let eat_ident p s =
  match peek_tok p with
  | Token.Tident s' when s' = s ->
      skip p;
      true
  | _ -> false

let is_punct p s = match peek_tok p with Token.Tpunct s' -> s' = s | _ -> false
let is_kw p s = match peek_tok p with Token.Tkw s' -> s' = s | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing.                                   *)
(* ------------------------------------------------------------------ *)

let mk loc edesc = { edesc; eloc = loc }

(* Binary operator precedence table, loosest first. *)
let binop_levels =
  [|
    [ ("||", Lor) ];
    [ ("&&", Land) ];
    [ ("|", Bor) ];
    [ ("^", Bxor) ];
    [ ("&", Band) ];
    [ ("==", Eq); ("!=", Ne) ];
    [ ("<", Lt); ("<=", Le); (">", Gt); (">=", Ge) ];
    [ ("<<", Shl); (">>", Shr) ];
    [ ("+", Add); ("-", Sub) ];
    [ ("*", Mul); ("/", Div); ("%", Mod) ];
  |]

let rec parse_expr_p p = parse_ternary p

and parse_ternary p =
  let cond = parse_binop p 0 in
  if eat_punct p "?" then begin
    let then_ = parse_expr_p p in
    expect_punct p ":";
    let else_ = parse_ternary p in
    mk cond.eloc (Ternary (cond, then_, else_))
  end
  else cond

and parse_binop p level =
  if level >= Array.length binop_levels then parse_unary p
  else begin
    let lhs = ref (parse_binop p (level + 1)) in
    let continue = ref true in
    while !continue do
      match peek_tok p with
      | Token.Tpunct s -> (
          match List.assoc_opt s binop_levels.(level) with
          | Some op ->
              skip p;
              let rhs = parse_binop p (level + 1) in
              lhs := mk (!lhs).eloc (Binop (op, !lhs, rhs))
          | None -> continue := false)
      | _ -> continue := false
    done;
    !lhs
  end

and parse_unary p =
  let loc = cur_loc p in
  match peek_tok p with
  | Token.Tpunct "-" ->
      skip p;
      mk loc (Unop (Neg, parse_unary p))
  | Token.Tpunct "!" ->
      skip p;
      mk loc (Unop (Not, parse_unary p))
  | Token.Tpunct "~" ->
      skip p;
      mk loc (Unop (Bit_not, parse_unary p))
  | Token.Tpunct "+" ->
      skip p;
      parse_unary p
  | Token.Tpunct "(" -> (
      (* Either a cast "(int)e" / "(double)e" or a parenthesized expr. *)
      match p.toks with
      | (Token.Tpunct "(", _) :: (Token.Tkw ("int" as k), _) :: (Token.Tpunct ")", _) :: _
      | (Token.Tpunct "(", _) :: (Token.Tkw (("double" | "float") as k), _) :: (Token.Tpunct ")", _) :: _
        ->
          skip p;
          skip p;
          skip p;
          let cast = if k = "int" then Cast_int else Cast_double in
          mk loc (Unop (cast, parse_unary p))
      | _ ->
          skip p;
          let e = parse_expr_p p in
          expect_punct p ")";
          e)
  | _ -> parse_primary p

and parse_primary p =
  let tok, loc = next p in
  match tok with
  | Token.Tint_lit n -> mk loc (Int_lit n)
  | Token.Tfloat_lit f -> mk loc (Float_lit f)
  | Token.Tident "__length" ->
      expect_punct p "(";
      let a = expect_ident p in
      expect_punct p ")";
      mk loc (Length a)
  | Token.Tident name ->
      if eat_punct p "(" then begin
        let args = ref [] in
        if not (is_punct p ")") then begin
          args := [ parse_expr_p p ];
          while eat_punct p "," do
            args := parse_expr_p p :: !args
          done
        end;
        expect_punct p ")";
        mk loc (Call (name, List.rev !args))
      end
      else if eat_punct p "[" then begin
        let idx = parse_expr_p p in
        expect_punct p "]";
        if eat_punct p "[" then begin
          let idx2 = parse_expr_p p in
          expect_punct p "]";
          match Hashtbl.find_opt p.dims2 name with
          | Some inner ->
              let row = mk loc (Binop (Mul, idx, inner)) in
              mk loc (Index (name, mk loc (Binop (Add, row, idx2))))
          | None -> Loc.error loc "%s is not a two-dimensional array" name
        end
        else mk loc (Index (name, idx))
      end
      else mk loc (Var name)
  | tok -> Loc.error loc "expected expression, found %s" (Token.to_string tok)

(* ------------------------------------------------------------------ *)
(* Directives.                                                          *)
(* ------------------------------------------------------------------ *)

let parse_redop p =
  let tok, loc = next p in
  match tok with
  | Token.Tpunct "+" -> Rplus
  | Token.Tpunct "*" -> Rmul
  | Token.Tident "max" -> Rmax
  | Token.Tident "min" -> Rmin
  | tok -> Loc.error loc "expected reduction operator (+, *, max, min), found %s" (Token.to_string tok)

let parse_subarray p =
  let name = expect_ident p in
  if eat_punct p "[" then begin
    let start = parse_expr_p p in
    expect_punct p ":";
    let len = parse_expr_p p in
    expect_punct p "]";
    { sub_array = name; sub_start = Some start; sub_len = Some len }
  end
  else { sub_array = name; sub_start = None; sub_len = None }

let parse_subarray_list p =
  expect_punct p "(";
  let subs = ref [ parse_subarray p ] in
  while eat_punct p "," do
    subs := parse_subarray p :: !subs
  done;
  expect_punct p ")";
  List.rev !subs

(* One localaccess entry: "a : stride(s [, left [, right]])" or "a : full". *)
let parse_la_spec p =
  let loc = cur_loc p in
  let name = expect_ident p in
  expect_punct p ":";
  if eat_ident p "full" then
    (* Whole-array access: declared, but gives the runtime no partition. *)
    None
  else begin
    if not (eat_ident p "stride") then
      Loc.error loc "localaccess spec for %s: expected 'stride(...)' or 'full'" name;
    expect_punct p "(";
    let stride = parse_expr_p p in
    let zero = mk loc (Int_lit 0) in
    let left = if eat_punct p "," then parse_expr_p p else zero in
    let right = if eat_punct p "," then parse_expr_p p else zero in
    expect_punct p ")";
    Some { la_array = name; la_stride = stride; la_left = left; la_right = right }
  end

let parse_la_specs p =
  expect_punct p "(";
  let specs = ref [] in
  (match parse_la_spec p with Some s -> specs := [ s ] | None -> ());
  while eat_punct p "," do
    match parse_la_spec p with Some s -> specs := s :: !specs | None -> ()
  done;
  expect_punct p ")";
  List.rev !specs

let parse_opt_int_arg p =
  if eat_punct p "(" then begin
    match next p with
    | Token.Tint_lit n, _ ->
        expect_punct p ")";
        Some n
    | tok, loc -> Loc.error loc "expected integer, found %s" (Token.to_string tok)
  end
  else None

let data_kind_of_name = function
  | "copy" -> Some Copy
  | "copyin" -> Some Copyin
  | "copyout" -> Some Copyout
  | "create" -> Some Create
  | "present" -> Some Present
  | _ -> None

let rec parse_clauses p acc =
  match peek_tok p with
  | Token.Teof -> List.rev acc
  | Token.Tkw "if" ->
      skip p;
      expect_punct p "(";
      let cond = parse_expr_p p in
      expect_punct p ")";
      parse_clauses p (Cif cond :: acc)
  | Token.Tident name -> (
      match data_kind_of_name name with
      | Some kind ->
          skip p;
          parse_clauses p (Cdata (kind, parse_subarray_list p) :: acc)
      | None -> (
          match name with
          | "reduction" ->
              skip p;
              expect_punct p "(";
              let op = parse_redop p in
              expect_punct p ":";
              let vars = ref [ expect_ident p ] in
              while eat_punct p "," do
                vars := expect_ident p :: !vars
              done;
              expect_punct p ")";
              parse_clauses p (Creduction (op, List.rev !vars) :: acc)
          | "gang" ->
              skip p;
              parse_clauses p (Cgang (parse_opt_int_arg p) :: acc)
          | "worker" ->
              skip p;
              parse_clauses p (Cworker (parse_opt_int_arg p) :: acc)
          | "vector" ->
              skip p;
              parse_clauses p (Cvector (parse_opt_int_arg p) :: acc)
          | "independent" ->
              skip p;
              parse_clauses p (Cindependent :: acc)
          | "localaccess" ->
              skip p;
              parse_clauses p (Clocalaccess (parse_la_specs p) :: acc)
          | other -> fail p "unknown clause %S" other))
  | _ -> fail p "expected clause"

let parse_directive_p p =
  let loc = cur_loc p in
  if not (eat_ident p "acc") then Loc.error loc "expected 'acc' after #pragma";
  match next p with
  | Token.Tident "parallel", _ | Token.Tident "kernels", _ ->
      ignore (eat_ident p "loop");
      Dparallel_loop (parse_clauses p [])
  | Token.Tident "loop", _ -> Dparallel_loop (parse_clauses p [])
  | Token.Tident "data", _ -> Ddata (parse_clauses p [])
  | Token.Tident "enter", _ ->
      if not (eat_ident p "data") then Loc.error loc "expected 'data' after 'enter'";
      Denter_data (parse_clauses p [])
  | Token.Tident "exit", _ ->
      if not (eat_ident p "data") then Loc.error loc "expected 'data' after 'exit'";
      Dexit_data (parse_clauses p [])
  | Token.Tident "update", _ ->
      if eat_ident p "host" then Dupdate_host (parse_subarray_list p)
      else if eat_ident p "device" then Dupdate_device (parse_subarray_list p)
      else Loc.error loc "update requires host(...) or device(...)"
  | Token.Tident "localaccess", _ ->
      Dlocalaccess (parse_la_specs p)
  | Token.Tident "reductiontoarray", _ ->
      expect_punct p "(";
      let op = parse_redop p in
      expect_punct p ":";
      let arr = expect_ident p in
      (* Tolerate (and ignore) an explicit subarray range. *)
      if eat_punct p "[" then begin
        ignore (parse_expr_p p);
        expect_punct p ":";
        ignore (parse_expr_p p);
        expect_punct p "]"
      end;
      expect_punct p ")";
      Dreduction_to_array { rta_op = op; rta_array = arr }
  | tok, loc -> Loc.error loc "unknown acc directive %s" (Token.to_string tok)

(* ------------------------------------------------------------------ *)
(* Statements.                                                          *)
(* ------------------------------------------------------------------ *)

let mks loc sdesc = { sdesc; sloc = loc }

let parse_type_name p =
  let tok, loc = next p in
  match tok with
  | Token.Tkw "void" -> Tvoid
  | Token.Tkw "int" -> Tint
  | Token.Tkw "double" | Token.Tkw "float" -> Tdouble
  | tok -> Loc.error loc "expected type, found %s" (Token.to_string tok)

let is_type_kw p = is_kw p "int" || is_kw p "double" || is_kw p "float" || is_kw p "void"

let lvalue_of_expr e =
  match e.edesc with
  | Var v -> Lvar v
  | Index (a, i) -> Lindex (a, i)
  | _ -> Loc.error e.eloc "not an assignable lvalue"

(* A "simple statement": assignment, increment, or expression. Shared by
   for-headers and expression statements; does not consume ';'. *)
let parse_simple_stmt p =
  let loc = cur_loc p in
  let e = parse_expr_p p in
  match peek_tok p with
  | Token.Tpunct "=" ->
      skip p;
      mks loc (Sassign (lvalue_of_expr e, Set, parse_expr_p p))
  | Token.Tpunct "+=" ->
      skip p;
      mks loc (Sassign (lvalue_of_expr e, Add_set, parse_expr_p p))
  | Token.Tpunct "-=" ->
      skip p;
      mks loc (Sassign (lvalue_of_expr e, Sub_set, parse_expr_p p))
  | Token.Tpunct "*=" ->
      skip p;
      mks loc (Sassign (lvalue_of_expr e, Mul_set, parse_expr_p p))
  | Token.Tpunct "/=" ->
      skip p;
      mks loc (Sassign (lvalue_of_expr e, Div_set, parse_expr_p p))
  | Token.Tpunct "++" ->
      skip p;
      mks loc (Sincr (lvalue_of_expr e, 1))
  | Token.Tpunct "--" ->
      skip p;
      mks loc (Sincr (lvalue_of_expr e, -1))
  | _ -> mks loc (Sexpr e)

let parse_decl p =
  let loc = cur_loc p in
  let ty = parse_type_name p in
  let name = expect_ident p in
  if eat_punct p "[" then begin
    let elem =
      match ty with
      | Tint -> Eint
      | Tdouble -> Edouble
      | Tvoid | Tarray _ -> Loc.error loc "array of %s not supported" (typ_to_string ty)
    in
    let len = parse_expr_p p in
    expect_punct p "]";
    if eat_punct p "[" then begin
      let inner = parse_expr_p p in
      expect_punct p "]";
      Hashtbl.replace p.dims2 name inner;
      mks loc (Sarray_decl (elem, name, { edesc = Binop (Mul, len, inner); eloc = loc }))
    end
    else mks loc (Sarray_decl (elem, name, len))
  end
  else begin
    let init = if eat_punct p "=" then Some (parse_expr_p p) else None in
    mks loc (Sdecl (ty, name, init))
  end

let rec parse_stmt p =
  let loc = cur_loc p in
  match peek_tok p with
  | Token.Tpragma payload ->
      skip p;
      let dp =
        { p with toks = Lexer.tokenize_fragment ~file:loc.Loc.file ~line:loc.Loc.line payload }
      in
      let d = parse_directive_p dp in
      (match peek_tok dp with
      | Token.Teof -> ()
      | tok -> Loc.error loc "trailing tokens in pragma: %s" (Token.to_string tok));
      mks loc (Spragma (d, parse_stmt p))
  | Token.Tpunct ";" ->
      (* Empty statement: the anchor for standalone executable directives. *)
      skip p;
      mks loc (Sblock [])
  | Token.Tpunct "{" ->
      skip p;
      let body = parse_stmts_until p "}" in
      mks loc (Sblock body)
  | Token.Tkw "if" ->
      skip p;
      expect_punct p "(";
      let cond = parse_expr_p p in
      expect_punct p ")";
      let then_ = parse_stmt p in
      let else_ = if is_kw p "else" then (skip p; [ parse_stmt p ]) else [] in
      mks loc (Sif (cond, [ then_ ], else_))
  | Token.Tkw "while" ->
      skip p;
      expect_punct p "(";
      let cond = parse_expr_p p in
      expect_punct p ")";
      mks loc (Swhile (cond, [ parse_stmt p ]))
  | Token.Tkw "for" ->
      skip p;
      expect_punct p "(";
      let for_init =
        if is_punct p ";" then None
        else if is_type_kw p then Some (parse_decl p)
        else Some (parse_simple_stmt p)
      in
      expect_punct p ";";
      let for_cond = if is_punct p ";" then None else Some (parse_expr_p p) in
      expect_punct p ";";
      let for_update = if is_punct p ")" then None else Some (parse_simple_stmt p) in
      expect_punct p ")";
      mks loc (Sfor ({ for_init; for_cond; for_update }, [ parse_stmt p ]))
  | Token.Tkw "return" ->
      skip p;
      let e = if is_punct p ";" then None else Some (parse_expr_p p) in
      expect_punct p ";";
      mks loc (Sreturn e)
  | Token.Tkw "break" ->
      skip p;
      expect_punct p ";";
      mks loc Sbreak
  | Token.Tkw "continue" ->
      skip p;
      expect_punct p ";";
      mks loc Scontinue
  | Token.Tkw ("int" | "double" | "float" | "void") ->
      let d = parse_decl p in
      expect_punct p ";";
      d
  | _ ->
      let s = parse_simple_stmt p in
      expect_punct p ";";
      s

and parse_stmts_until p closer =
  let stmts = ref [] in
  while not (is_punct p closer) do
    if peek_tok p = Token.Teof then fail p "unexpected end of input, expected %S" closer;
    stmts := parse_stmt p :: !stmts
  done;
  skip p;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Top level.                                                           *)
(* ------------------------------------------------------------------ *)

let parse_param p =
  let loc = cur_loc p in
  let ty = parse_type_name p in
  (* Accept both "double *x" and "double x[]". *)
  let pointer = eat_punct p "*" in
  let name = expect_ident p in
  let array = eat_punct p "[" in
  if array then begin
    expect_punct p "]";
    (* VLA-style 2-D parameter: double a[][m] (m from an earlier param). *)
    if eat_punct p "[" then begin
      let inner = parse_expr_p p in
      expect_punct p "]";
      Hashtbl.replace p.dims2 name inner
    end
  end;
  let param_ty =
    if pointer || array then
      match ty with
      | Tint -> Tarray Eint
      | Tdouble -> Tarray Edouble
      | Tvoid | Tarray _ -> Loc.error loc "array of %s not supported" (typ_to_string ty)
    else ty
  in
  { param_name = name; param_ty }

let parse_func p =
  Hashtbl.reset p.dims2;
  let loc = cur_loc p in
  let fret = parse_type_name p in
  let fname = expect_ident p in
  expect_punct p "(";
  let fparams = ref [] in
  if not (is_punct p ")") then begin
    fparams := [ parse_param p ];
    while eat_punct p "," do
      fparams := parse_param p :: !fparams
    done
  end;
  expect_punct p ")";
  expect_punct p "{";
  let fbody = parse_stmts_until p "}" in
  { fname; fret; fparams = List.rev !fparams; fbody; floc = loc }

let parse ~file src =
  let p = { toks = Lexer.tokenize ~file src; dims2 = Hashtbl.create 8 } in
  let funcs = ref [] in
  while peek_tok p <> Token.Teof do
    funcs := parse_func p :: !funcs
  done;
  { funcs = List.rev !funcs; source_name = file }

let parse_expr ~file src =
  let p = { toks = Lexer.tokenize ~file src; dims2 = Hashtbl.create 8 } in
  let e = parse_expr_p p in
  (match peek_tok p with
  | Token.Teof -> ()
  | tok -> Loc.error (cur_loc p) "trailing tokens after expression: %s" (Token.to_string tok));
  e

let parse_directive ~file ~line payload =
  let p = { toks = Lexer.tokenize_fragment ~file ~line payload; dims2 = Hashtbl.create 8 } in
  let d = parse_directive_p p in
  (match peek_tok p with
  | Token.Teof -> ()
  | tok -> Loc.error (cur_loc p) "trailing tokens in pragma: %s" (Token.to_string tok));
  d
