(** Tokens of the mini-C language (and of pragma lines, which reuse the
    same lexer). *)

type t =
  | Tint_lit of int
  | Tfloat_lit of float
  | Tident of string
  | Tkw of string  (** reserved word: int, double, float, void, if, else, for, while, return, break, continue *)
  | Tpunct of string  (** operator or punctuation, e.g. "+", "<=", "(", "[", ":" *)
  | Tpragma of string  (** a whole [#pragma ...] line, raw text after "#pragma" *)
  | Teof

val equal : t -> t -> bool
val to_string : t -> string
val keywords : string list
