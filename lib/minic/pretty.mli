(** Source-level pretty-printing of the AST, for diagnostics and tests.

    Output is valid mini-C: [parse (print (parse s))] succeeds and yields an
    equivalent program (round-trip property tested in the suite). *)

val expr_to_string : Ast.expr -> string
val directive_to_string : Ast.directive -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val func_to_string : Ast.func -> string
val program_to_string : Ast.program -> string
