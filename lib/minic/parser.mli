(** Recursive-descent parser for the mini-C subset and its OpenACC
    directives (including the paper's [localaccess] and [reductiontoarray]
    extensions).

    Directives attach to the statement that follows them, so
    [#pragma acc localaccess(...)] above [#pragma acc parallel loop] above a
    [for] parses as nested {!Ast.Spragma} wrappers around the loop. *)

val parse : file:string -> string -> Ast.program
(** Parse a translation unit. Raises {!Loc.Error} with a located message on
    any syntax error. *)

val parse_expr : file:string -> string -> Ast.expr
(** Parse a standalone expression (used by tests and by tools). *)

val parse_directive : file:string -> line:int -> string -> Ast.directive
(** Parse a pragma payload, i.e. the text after [#pragma]. *)
