type elem_ty = Eint | Edouble

type typ = Tvoid | Tint | Tdouble | Tarray of elem_ty

type unop = Neg | Not | Bit_not | Cast_int | Cast_double

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor
  | Band | Bor | Bxor | Shl | Shr

type expr = { edesc : edesc; eloc : Loc.t }

and edesc =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ternary of expr * expr * expr
  | Call of string * expr list
  | Length of string

type lvalue = Lvar of string | Lindex of string * expr

type assign_op = Set | Add_set | Sub_set | Mul_set | Div_set

type redop = Rplus | Rmul | Rmax | Rmin

type subarray = { sub_array : string; sub_start : expr option; sub_len : expr option }

type data_kind = Copy | Copyin | Copyout | Create | Present

type localaccess_spec = { la_array : string; la_stride : expr; la_left : expr; la_right : expr }

type clause =
  | Cdata of data_kind * subarray list
  | Creduction of redop * string list
  | Cgang of int option
  | Cworker of int option
  | Cvector of int option
  | Clocalaccess of localaccess_spec list
  | Cindependent
  | Cif of expr

type directive =
  | Dparallel_loop of clause list
  | Ddata of clause list
  | Denter_data of clause list
  | Dexit_data of clause list
  | Dupdate_host of subarray list
  | Dupdate_device of subarray list
  | Dlocalaccess of localaccess_spec list
  | Dreduction_to_array of { rta_op : redop; rta_array : string }

type stmt = { sdesc : sdesc; sloc : Loc.t }

and sdesc =
  | Sdecl of typ * string * expr option
  | Sarray_decl of elem_ty * string * expr
  | Sassign of lvalue * assign_op * expr
  | Sincr of lvalue * int
  | Sexpr of expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of for_header * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Spragma of directive * stmt

and for_header = { for_init : stmt option; for_cond : expr option; for_update : stmt option }

type param = { param_name : string; param_ty : typ }

type func = { fname : string; fret : typ; fparams : param list; fbody : stmt list; floc : Loc.t }

type program = { funcs : func list; source_name : string }

let find_func p name = List.find_opt (fun f -> f.fname = name) p.funcs

let redop_to_string = function Rplus -> "+" | Rmul -> "*" | Rmax -> "max" | Rmin -> "min"

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"

let typ_to_string = function
  | Tvoid -> "void"
  | Tint -> "int"
  | Tdouble -> "double"
  | Tarray Eint -> "int[]"
  | Tarray Edouble -> "double[]"

let elem_ty_size = function Eint -> 4 | Edouble -> 8
