(** Source locations for diagnostics. *)

type t = { file : string; line : int; col : int }

val dummy : t
val make : file:string -> line:int -> col:int -> t
val pp : Format.formatter -> t -> unit
(** "file:line:col". *)

val to_string : t -> string

exception Error of t * string
(** The frontend's diagnostic exception: location plus message. *)

val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error loc fmt ...] raises {!Error} with a formatted message. *)
