open Mgacc_minic
open Ast

type value = Vint of int | Vfloat of float

type cell = Cint of int ref | Cfloat of float ref | Carray of View.t

type env = {
  prog : program;
  mutable scopes : (string, cell) Hashtbl.t list;
  hooks : hooks;
  loop_ids : (Loc.t, int) Hashtbl.t;
  mutable next_loop_id : int;
}

and hooks = {
  on_parallel_loop : env -> Mgacc_analysis.Loop_info.t -> unit;
  on_data_enter : env -> clause list -> unit;
  on_data_exit : env -> clause list -> unit;
  on_update_host : env -> subarray list -> unit;
  on_update_device : env -> subarray list -> unit;
}

exception Return_exc of value option
exception Break_exc
exception Continue_exc

let as_int loc = function
  | Vint n -> n
  | Vfloat f ->
      ignore loc;
      int_of_float f

let as_float = function Vint n -> float_of_int n | Vfloat f -> f

let push env = env.scopes <- Hashtbl.create 8 :: env.scopes

let pop env =
  match env.scopes with [] -> assert false | _ :: rest -> env.scopes <- rest

let lookup env loc v =
  let rec go = function
    | [] -> Loc.error loc "undefined variable %s" v
    | scope :: rest -> ( match Hashtbl.find_opt scope v with Some c -> c | None -> go rest)
  in
  go env.scopes

let declare env loc v cell =
  match env.scopes with
  | [] -> assert false
  | scope :: _ ->
      if Hashtbl.mem scope v then Loc.error loc "redeclaration of %s" v;
      Hashtbl.replace scope v cell

let rec eval env e : value =
  match e.edesc with
  | Int_lit n -> Vint n
  | Float_lit f -> Vfloat f
  | Var v -> (
      match lookup env e.eloc v with
      | Cint r -> Vint !r
      | Cfloat r -> Vfloat !r
      | Carray _ -> Loc.error e.eloc "array %s used as a scalar" v)
  | Length a -> (
      match lookup env e.eloc a with
      | Carray view -> Vint view.View.length
      | Cint _ | Cfloat _ -> Loc.error e.eloc "__length of non-array %s" a)
  | Index (a, idx) -> (
      let i = as_int e.eloc (eval env idx) in
      match lookup env e.eloc a with
      | Carray view -> (
          match view.View.elem with
          | Eint -> Vint (view.View.get_i i)
          | Edouble -> Vfloat (view.View.get_f i))
      | Cint _ | Cfloat _ -> Loc.error e.eloc "indexing non-array %s" a)
  | Unop (op, x) -> (
      let v = eval env x in
      match op with
      | Neg -> ( match v with Vint n -> Vint (-n) | Vfloat f -> Vfloat (-.f))
      | Not -> Vint (if as_float v = 0.0 then 1 else 0)
      | Bit_not -> Vint (lnot (as_int e.eloc v))
      | Cast_int -> Vint (as_int e.eloc v)
      | Cast_double -> Vfloat (as_float v))
  | Binop (op, x, y) -> eval_binop env e.eloc op x y
  | Ternary (c, a, b) -> if as_float (eval env c) <> 0.0 then eval env a else eval env b
  | Call (name, args) -> (
      match Builtins.find name with
      | Some b ->
          let vals = List.map (eval env) args in
          if b.Builtins.result = Tdouble then
            Vfloat (Builtins.apply_double name (List.map as_float vals))
          else Vint (Builtins.apply_int name (List.map (as_int e.eloc) vals))
      | None -> (
          match call_function env e.eloc name args with
          | Some v -> v
          | None -> Loc.error e.eloc "void function %s used in an expression" name))

and eval_binop env loc op x y =
  match op with
  | Land -> Vint (if as_float (eval env x) <> 0.0 && as_float (eval env y) <> 0.0 then 1 else 0)
  | Lor -> Vint (if as_float (eval env x) <> 0.0 || as_float (eval env y) <> 0.0 then 1 else 0)
  | _ -> (
      let a = eval env x and b = eval env y in
      match (op, a, b) with
      | Add, Vint m, Vint n -> Vint (m + n)
      | Sub, Vint m, Vint n -> Vint (m - n)
      | Mul, Vint m, Vint n -> Vint (m * n)
      | Div, Vint m, Vint n ->
          if n = 0 then Loc.error loc "integer division by zero";
          Vint (m / n)
      | Mod, Vint m, Vint n ->
          if n = 0 then Loc.error loc "integer modulo by zero";
          Vint (m mod n)
      | (Add | Sub | Mul | Div), _, _ -> (
          let fa = as_float a and fb = as_float b in
          match op with
          | Add -> Vfloat (fa +. fb)
          | Sub -> Vfloat (fa -. fb)
          | Mul -> Vfloat (fa *. fb)
          | Div -> Vfloat (fa /. fb)
          | _ -> assert false)
      | Mod, _, _ -> Loc.error loc "%% requires int operands"
      | (Band | Bor | Bxor | Shl | Shr), _, _ -> (
          let m = as_int loc a and n = as_int loc b in
          match op with
          | Band -> Vint (m land n)
          | Bor -> Vint (m lor n)
          | Bxor -> Vint (m lxor n)
          | Shl -> Vint (m lsl n)
          | Shr -> Vint (m asr n)
          | _ -> assert false)
      | (Eq | Ne | Lt | Le | Gt | Ge), _, _ ->
          let fa = as_float a and fb = as_float b in
          let r =
            match op with
            | Eq -> fa = fb
            | Ne -> fa <> fb
            | Lt -> fa < fb
            | Le -> fa <= fb
            | Gt -> fa > fb
            | Ge -> fa >= fb
            | _ -> assert false
          in
          Vint (if r then 1 else 0)
      | (Land | Lor), _, _ -> assert false)

and assign env loc lv op rhs_value =
  let combine_int old rhs =
    match op with
    | Set -> rhs
    | Add_set -> old + rhs
    | Sub_set -> old - rhs
    | Mul_set -> old * rhs
    | Div_set ->
        if rhs = 0 then Loc.error loc "integer division by zero";
        old / rhs
  in
  let combine_float old rhs =
    match op with
    | Set -> rhs
    | Add_set -> old +. rhs
    | Sub_set -> old -. rhs
    | Mul_set -> old *. rhs
    | Div_set -> old /. rhs
  in
  match lv with
  | Lvar v -> (
      match lookup env loc v with
      | Cint r -> r := combine_int !r (as_int loc rhs_value)
      | Cfloat r -> r := combine_float !r (as_float rhs_value)
      | Carray _ -> Loc.error loc "cannot assign whole array %s" v)
  | Lindex (a, idx) -> (
      let i = as_int loc (eval env idx) in
      match lookup env loc a with
      | Carray view -> (
          match view.View.elem with
          | Eint -> view.View.set_i i (combine_int (view.View.get_i i) (as_int loc rhs_value))
          | Edouble -> view.View.set_f i (combine_float (view.View.get_f i) (as_float rhs_value)))
      | Cint _ | Cfloat _ -> Loc.error loc "indexing non-array %s" a)

and exec_stmt env s =
  match s.sdesc with
  | Sdecl (ty, v, init) -> (
      match ty with
      | Tint ->
          let n = match init with Some e -> as_int s.sloc (eval env e) | None -> 0 in
          declare env s.sloc v (Cint (ref n))
      | Tdouble ->
          let f = match init with Some e -> as_float (eval env e) | None -> 0.0 in
          declare env s.sloc v (Cfloat (ref f))
      | Tvoid | Tarray _ -> Loc.error s.sloc "unsupported scalar declaration type")
  | Sarray_decl (elem, v, len) -> (
      let n = as_int s.sloc (eval env len) in
      if n < 0 then Loc.error s.sloc "negative array length for %s" v;
      match elem with
      | Eint -> declare env s.sloc v (Carray (View.of_int_array ~name:v (Array.make n 0)))
      | Edouble ->
          declare env s.sloc v (Carray (View.of_float_array ~name:v (Array.make n 0.0))))
  | Sassign (lv, op, rhs) -> assign env s.sloc lv op (eval env rhs)
  | Sincr (lv, d) -> assign env s.sloc lv Add_set (Vint d)
  | Sexpr e -> (
      (* Calls to void user functions are legal as statements. *)
      match e.edesc with
      | Call (name, args) when not (Builtins.is_builtin name) ->
          ignore (call_function env e.eloc name args)
      | _ -> ignore (eval env e))
  | Sif (c, then_, else_) ->
      if as_float (eval env c) <> 0.0 then exec_block env then_ else exec_block env else_
  | Swhile (c, body) -> (
      try
        while as_float (eval env c) <> 0.0 do
          try exec_block env body with Continue_exc -> ()
        done
      with Break_exc -> ())
  | Sfor (hdr, body) -> (
      push env;
      Option.iter (exec_stmt env) hdr.for_init;
      (try
         let continue_loop () =
           match hdr.for_cond with None -> true | Some c -> as_float (eval env c) <> 0.0
         in
         while continue_loop () do
           (try exec_block env body with Continue_exc -> ());
           Option.iter (exec_stmt env) hdr.for_update
         done
       with Break_exc -> ());
      pop env)
  | Sreturn e -> raise (Return_exc (Option.map (eval env) e))
  | Sbreak -> raise Break_exc
  | Scontinue -> raise Continue_exc
  | Sblock body -> exec_block env body
  | Spragma _ -> exec_pragma env s

and exec_block env body =
  (* Only blocks that declare names need their own scope; skipping the
     hashtable allocation matters because loop bodies execute this path
     once per iteration. *)
  let declares =
    List.exists
      (fun s -> match s.sdesc with Sdecl _ | Sarray_decl _ -> true | _ -> false)
      body
  in
  if declares then begin
    push env;
    (try List.iter (exec_stmt env) body
     with e ->
       pop env;
       raise e);
    pop env
  end
  else List.iter (exec_stmt env) body

and exec_pragma env s =
  (* Assign stable loop ids by source location. *)
  let loop_id_for loc =
    match Hashtbl.find_opt env.loop_ids loc with
    | Some id -> id
    | None ->
        let id = env.next_loop_id in
        env.next_loop_id <- id + 1;
        Hashtbl.replace env.loop_ids loc id;
        id
  in
  match s.sdesc with
  | Spragma (Ddata clauses, inner) ->
      env.hooks.on_data_enter env clauses;
      (try exec_stmt env inner
       with e ->
         env.hooks.on_data_exit env clauses;
         raise e);
      env.hooks.on_data_exit env clauses
  | Spragma (Denter_data clauses, inner) ->
      env.hooks.on_data_enter env clauses;
      exec_stmt env inner
  | Spragma (Dexit_data clauses, inner) ->
      env.hooks.on_data_exit env clauses;
      exec_stmt env inner
  | Spragma (Dupdate_host subs, inner) ->
      env.hooks.on_update_host env subs;
      exec_stmt env inner
  | Spragma (Dupdate_device subs, inner) ->
      env.hooks.on_update_device env subs;
      exec_stmt env inner
  | Spragma ((Dparallel_loop _ | Dlocalaccess _), _) -> (
      match Mgacc_analysis.Loop_info.of_stmt ~loop_id:0 s with
      | Some proto ->
          let loop = { proto with Mgacc_analysis.Loop_info.loop_id = loop_id_for s.sloc } in
          env.hooks.on_parallel_loop env loop
      | None -> (
          (* A localaccess stack with no parallel directive: just run it. *)
          match s.sdesc with
          | Spragma (_, inner) -> exec_stmt env inner
          | _ -> assert false))
  | Spragma (Dreduction_to_array _, inner) ->
      (* Outside a kernel, a reduction statement is just the statement. *)
      exec_stmt env inner
  | _ -> assert false

(* Scalar arguments are passed by value (fresh cells); array arguments pass
   the view by reference, C pointer style. Functions see only their own
   frame — no lexical capture. *)
and call_function env loc name (args : expr list) =
  match find_func env.prog name with
  | None -> Loc.error loc "call to undefined function %s" name
  | Some f ->
      if List.length args <> List.length f.fparams then
        Loc.error loc "function %s: arity mismatch" name;
      let bindings =
        List.map2
          (fun (p : param) (arg : expr) ->
            match p.param_ty with
            | Tarray _ -> (
                match arg.edesc with
                | Var a -> (
                    match lookup env arg.eloc a with
                    | Carray view -> (p.param_name, Carray view)
                    | _ -> Loc.error arg.eloc "argument %s is not an array" a)
                | _ -> Loc.error arg.eloc "array argument must be an array name")
            | Tint -> (p.param_name, Cint (ref (as_int loc (eval env arg))))
            | Tdouble -> (p.param_name, Cfloat (ref (as_float (eval env arg))))
            | Tvoid -> Loc.error loc "void parameter")
          f.fparams args
      in
      let saved = env.scopes in
      env.scopes <- [ Hashtbl.create 8 ];
      List.iter (fun (name, cell) -> declare env f.floc name cell) bindings;
      let result =
        try
          List.iter (exec_stmt env) f.fbody;
          None
        with Return_exc v -> v
      in
      env.scopes <- saved;
      result

(* ------------------------------------------------------------------ *)
(* Public API.                                                         *)
(* ------------------------------------------------------------------ *)

let eval_int env e = as_int e.eloc (eval env e)
let eval_float env e = as_float (eval env e)

let find_array_opt env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some (Carray v) -> Some v
        | Some _ -> None
        | None -> go rest)
  in
  go env.scopes

let find_array env name =
  match find_array_opt env name with Some v -> v | None -> raise Not_found

let get_scalar env name =
  match lookup env Loc.dummy name with
  | Cint r -> Vint !r
  | Cfloat r -> Vfloat !r
  | Carray _ -> invalid_arg (Printf.sprintf "Host_interp.get_scalar: %s is an array" name)

let set_scalar env name v =
  match lookup env Loc.dummy name with
  | Cint r -> r := as_int Loc.dummy v
  | Cfloat r -> r := as_float v
  | Carray _ -> invalid_arg (Printf.sprintf "Host_interp.set_scalar: %s is an array" name)

let program_of env = env.prog

let run_loop_sequentially env (loop : Mgacc_analysis.Loop_info.t) =
  let lo = eval_int env loop.Mgacc_analysis.Loop_info.lower in
  let hi = eval_int env loop.Mgacc_analysis.Loop_info.upper in
  push env;
  declare env loop.Mgacc_analysis.Loop_info.loop_loc loop.Mgacc_analysis.Loop_info.loop_var
    (Cint (ref lo));
  let iv =
    match lookup env Loc.dummy loop.Mgacc_analysis.Loop_info.loop_var with
    | Cint r -> r
    | _ -> assert false
  in
  for i = lo to hi - 1 do
    iv := i;
    try exec_block env loop.Mgacc_analysis.Loop_info.body
    with Continue_exc | Break_exc ->
      Loc.error loop.Mgacc_analysis.Loop_info.loop_loc
        "break/continue escaping a parallel loop iteration"
  done;
  pop env

let sequential_hooks =
  {
    on_parallel_loop = (fun env loop -> run_loop_sequentially env loop);
    on_data_enter = (fun _ _ -> ());
    on_data_exit = (fun _ _ -> ());
    on_update_host = (fun _ _ -> ());
    on_update_device = (fun _ _ -> ());
  }

let run_program ?(hooks = sequential_hooks) prog =
  Typecheck.check_program prog;
  let env =
    { prog; scopes = [ Hashtbl.create 8 ]; hooks; loop_ids = Hashtbl.create 8; next_loop_id = 0 }
  in
  (match find_func prog "main" with
  | None -> Loc.error Loc.dummy "program has no main function"
  | Some f ->
      if f.fparams <> [] then Loc.error f.floc "main must take no parameters";
      (try List.iter (exec_stmt env) f.fbody with Return_exc _ -> ()));
  env
