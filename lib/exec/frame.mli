(** Execution frames with compile-time slot assignment.

    The kernel compiler resolves every variable to a fixed slot in a typed
    bank (ints, floats, views) at compile time, so executing an iteration
    involves no name lookups. A {!Layout.t} is threaded through compilation
    to assign slots lexically; {!create} then instantiates a frame of the
    final size. *)

open Mgacc_minic

type slot = Int_slot of int | Float_slot of int | View_slot of int

type t = { ints : int array; floats : float array; views : View.t option array }

module Layout : sig
  type t

  val create : unit -> t
  val enter_scope : t -> unit
  val leave_scope : t -> unit

  val declare : t -> Loc.t -> string -> Ast.typ -> slot
  (** Assign a fresh slot; raises {!Loc.Error} on redeclaration in the same
      scope or on a [void] declaration. *)

  val lookup : t -> string -> (slot * Ast.typ) option
  (** Innermost-scope-first lookup. *)

  val int_bank_size : t -> int
  val float_bank_size : t -> int
  val view_bank_size : t -> int
end

val create : Layout.t -> t
(** A zeroed frame sized for everything the layout ever declared. *)

val set_view : t -> slot -> View.t -> unit
val get_view : t -> int -> View.t
(** Raises [Invalid_argument] if the slot was never bound. *)

val set_int : t -> slot -> int -> unit
val set_float : t -> slot -> float -> unit
val get_int : t -> slot -> int
val get_float : t -> slot -> float
