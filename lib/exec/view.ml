open Mgacc_minic
open Ast

type t = {
  name : string;
  elem : elem_ty;
  length : int;
  get_f : int -> float;
  set_f : int -> float -> unit;
  get_i : int -> int;
  set_i : int -> int -> unit;
  reduce_f : redop -> int -> float -> unit;
  reduce_i : redop -> int -> int -> unit;
}

exception Bounds of { name : string; index : int; length : int }

let apply_redop_f op a b =
  match op with
  | Rplus -> a +. b
  | Rmul -> a *. b
  | Rmax -> Float.max a b
  | Rmin -> Float.min a b

let apply_redop_i op a b =
  match op with Rplus -> a + b | Rmul -> a * b | Rmax -> max a b | Rmin -> min a b

let redop_identity_f = function
  | Rplus -> 0.0
  | Rmul -> 1.0
  | Rmax -> neg_infinity
  | Rmin -> infinity

let redop_identity_i = function
  | Rplus -> 0
  | Rmul -> 1
  | Rmax -> min_int
  | Rmin -> max_int

let wrong_type name what =
  invalid_arg (Printf.sprintf "View: %s access on wrong-typed view %s" what name)

let of_float_array ~name data =
  let n = Array.length data in
  let check i = if i < 0 || i >= n then raise (Bounds { name; index = i; length = n }) in
  {
    name;
    elem = Edouble;
    length = n;
    get_f =
      (fun i ->
        check i;
        Array.unsafe_get data i);
    set_f =
      (fun i v ->
        check i;
        Array.unsafe_set data i v);
    get_i = (fun _ -> wrong_type name "int get");
    set_i = (fun _ _ -> wrong_type name "int set");
    reduce_f =
      (fun op i v ->
        check i;
        Array.unsafe_set data i (apply_redop_f op (Array.unsafe_get data i) v));
    reduce_i = (fun _ _ _ -> wrong_type name "int reduce");
  }

let of_int_array ~name data =
  let n = Array.length data in
  let check i = if i < 0 || i >= n then raise (Bounds { name; index = i; length = n }) in
  {
    name;
    elem = Eint;
    length = n;
    get_i =
      (fun i ->
        check i;
        Array.unsafe_get data i);
    set_i =
      (fun i v ->
        check i;
        Array.unsafe_set data i v);
    get_f = (fun _ -> wrong_type name "float get");
    set_f = (fun _ _ -> wrong_type name "float set");
    reduce_i =
      (fun op i v ->
        check i;
        Array.unsafe_set data i (apply_redop_i op (Array.unsafe_get data i) v));
    reduce_f = (fun _ _ _ -> wrong_type name "float reduce");
  }

let snapshot_f v =
  match v.elem with
  | Edouble -> Array.init v.length v.get_f
  | Eint -> invalid_arg (Printf.sprintf "View.snapshot_f: %s is an int view" v.name)

let snapshot_i v =
  match v.elem with
  | Eint -> Array.init v.length v.get_i
  | Edouble -> invalid_arg (Printf.sprintf "View.snapshot_i: %s is a double view" v.name)
