(** Array views: the storage interface kernels and host code execute
    against.

    A view hides where an array actually lives. A host array wraps an OCaml
    array directly; the multi-GPU runtime builds views that translate
    logical indices into a device partition, mark dirty bits on writes,
    buffer write misses, or accumulate into reduction partials. The
    compiled kernel code is the same either way. *)

open Mgacc_minic

type t = {
  name : string;
  elem : Ast.elem_ty;
  length : int;  (** logical element count *)
  get_f : int -> float;
  set_f : int -> float -> unit;
  get_i : int -> int;
  set_i : int -> int -> unit;
  reduce_f : Ast.redop -> int -> float -> unit;
      (** accumulate into a reduction destination; only reduction views
          implement this *)
  reduce_i : Ast.redop -> int -> int -> unit;
}

exception Bounds of { name : string; index : int; length : int }
(** Raised by the host-array accessors on out-of-range logical indices. *)

val of_float_array : name:string -> float array -> t
(** Bounds-checked direct view over (and aliasing) a host array;
    [reduce_f] applies the operator in place (the host/OpenMP semantics of
    a reduction). *)

val of_int_array : name:string -> int array -> t

val snapshot_f : t -> float array
(** Copy of the logical contents, read through the accessors. *)

val snapshot_i : t -> int array

val apply_redop_f : Ast.redop -> float -> float -> float
val apply_redop_i : Ast.redop -> int -> int -> int
val redop_identity_f : Ast.redop -> float
val redop_identity_i : Ast.redop -> int
