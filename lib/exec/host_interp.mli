(** Tree-walking interpreter for host-side mini-C code.

    The host program (allocation, initialization, iteration control) is
    interpreted directly; when execution reaches an OpenACC construct the
    corresponding hook fires. Different runners plug in different hooks:
    the sequential reference runner executes annotated loops in place, the
    OpenMP runner times them with the CPU model, and the multi-GPU OpenACC
    runtime distributes them over simulated devices. *)

open Mgacc_minic

type value = Vint of int | Vfloat of float

type env

type hooks = {
  on_parallel_loop : env -> Mgacc_analysis.Loop_info.t -> unit;
      (** fired instead of executing the annotated loop *)
  on_data_enter : env -> Ast.clause list -> unit;
  on_data_exit : env -> Ast.clause list -> unit;
  on_update_host : env -> Ast.subarray list -> unit;
  on_update_device : env -> Ast.subarray list -> unit;
}

val sequential_hooks : hooks
(** Ignore data directives; execute parallel loops sequentially in the host
    environment (the semantic reference). *)

val run_program : ?hooks:hooks -> Ast.program -> env
(** Typecheck and execute [main] (which must exist and take no
    parameters). Returns the final environment of the program's global
    interpretation (the [main] frame), for inspecting results. *)

val run_loop_sequentially : env -> Mgacc_analysis.Loop_info.t -> unit
(** Execute a parallel loop's iterations in order in the host environment
    (used by {!sequential_hooks} and as the fallback semantics). *)

(** {1 Environment access (for hooks and tests)} *)

val eval_int : env -> Ast.expr -> int
val eval_float : env -> Ast.expr -> float
val find_array : env -> string -> View.t
(** Raises [Not_found] if the name is not a live array. *)

val find_array_opt : env -> string -> View.t option
val get_scalar : env -> string -> value
val set_scalar : env -> string -> value -> unit
val program_of : env -> Ast.program
