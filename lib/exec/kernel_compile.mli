(** Closure compilation of parallel-loop bodies.

    The loop body is compiled once into OCaml closures over a slotted
    {!Frame.t}; running an iteration is then just closure application with
    no name resolution. The same compiled body serves every execution
    target — host OpenMP simulation, single-GPU CUDA baseline, and each GPU
    partition of the multi-GPU runtime — differing only in the views bound
    into the frame.

    While executing, the closures bump a {!Mgacc_gpusim.Cost.t}: arithmetic
    by operator type, and array traffic by the coalescing mode assigned to
    each syntactic access site by the [classify] callback (this is where
    the data-layout transformation changes the accounting).

    Restrictions enforced here (with located errors): no user function
    calls, no array declarations, no [return], and no nested parallel
    directives inside a kernel body. *)

open Mgacc_minic

type t = {
  run_iter : Frame.t -> int -> unit;  (** execute one iteration at index i *)
  make_frame : unit -> Frame.t;
  params : (string * Frame.slot * Ast.typ) list;
      (** parameter binding sites, in the order given to {!compile} *)
  cost : Mgacc_gpusim.Cost.t;  (** the live counter the closures bump *)
}

val compile :
  loop:Mgacc_analysis.Loop_info.t ->
  params:(string * Ast.typ) list ->
  classify:(string -> Ast.expr -> Mgacc_analysis.Coalesce.mode) ->
  t
(** [params] lists the kernel's free variables (loop-uniform scalars and
    arrays) with their host types; [classify array subscript] chooses the
    coalescing mode charged for that access site. *)

val extract_reduction :
  Ast.redop -> Ast.stmt -> Ast.expr * Ast.expr
(** [extract_reduction op stmt] decomposes a [reductiontoarray]-annotated
    assignment into (destination subscript, contribution expression),
    checking the statement really is an [op]-reduction (e.g.
    [a\[k\] += v], [a\[k\] = a\[k\] + v], [a\[k\] = fmax(a\[k\], v)]).
    Raises {!Loc.Error} otherwise. *)
