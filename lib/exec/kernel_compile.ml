open Mgacc_minic
open Ast
module Cost = Mgacc_gpusim.Cost
module Coalesce = Mgacc_analysis.Coalesce

type t = {
  run_iter : Frame.t -> int -> unit;
  make_frame : unit -> Frame.t;
  params : (string * Frame.slot * Ast.typ) list;
  cost : Cost.t;
}

exception Brk
exception Cnt

(* ------------------------------------------------------------------ *)
(* Reduction statement decomposition.                                  *)
(* ------------------------------------------------------------------ *)

let same_subscript a b = Pretty.expr_to_string a = Pretty.expr_to_string b

let extract_reduction op stmt =
  let loc = stmt.sloc in
  let bad fmt = Loc.error loc fmt in
  match stmt.sdesc with
  | Sassign (Lindex (arr, idx), aop, rhs) -> (
      let neg e = { edesc = Unop (Neg, e); eloc = e.eloc } in
      let is_dest e = match e.edesc with Index (a, i) -> a = arr && same_subscript i idx | _ -> false in
      match (aop, op) with
      | Add_set, Rplus -> (idx, rhs)
      | Sub_set, Rplus -> (idx, neg rhs)
      | Mul_set, Rmul -> (idx, rhs)
      | Set, _ -> (
          match rhs.edesc with
          | Binop (Add, l, r) when op = Rplus && is_dest l -> (idx, r)
          | Binop (Add, l, r) when op = Rplus && is_dest r -> (idx, l)
          | Binop (Sub, l, r) when op = Rplus && is_dest l -> (idx, neg r)
          | Binop (Mul, l, r) when op = Rmul && is_dest l -> (idx, r)
          | Binop (Mul, l, r) when op = Rmul && is_dest r -> (idx, l)
          | Call (("fmax" | "max"), [ l; r ]) when op = Rmax && is_dest l -> (idx, r)
          | Call (("fmax" | "max"), [ l; r ]) when op = Rmax && is_dest r -> (idx, l)
          | Call (("fmin" | "min"), [ l; r ]) when op = Rmin && is_dest l -> (idx, r)
          | Call (("fmin" | "min"), [ l; r ]) when op = Rmin && is_dest r -> (idx, l)
          | _ ->
              bad "statement does not match a %s-reduction into %s" (redop_to_string op) arr)
      | _ ->
          bad "assignment operator does not match the declared %s reduction" (redop_to_string op))
  | _ -> Loc.error loc "reductiontoarray must annotate an assignment into an array element"

(* ------------------------------------------------------------------ *)
(* Compilation context.                                                *)
(* ------------------------------------------------------------------ *)

type ctx = {
  layout : Frame.Layout.t;
  cost : Cost.t;
  classify : string -> Ast.expr -> Coalesce.mode;
}

let ty_of ctx e =
  Typecheck.type_of_expr
    (fun v -> Option.map snd (Frame.Layout.lookup ctx.layout v))
    e

let slot_of ctx loc v =
  match Frame.Layout.lookup ctx.layout v with
  | Some (slot, ty) -> (slot, ty)
  | None -> Loc.error loc "kernel compilation: unbound variable %s" v

let view_slot_of ctx loc a =
  match slot_of ctx loc a with
  | Frame.View_slot i, Tarray elem -> (i, elem)
  | _ -> Loc.error loc "kernel compilation: %s is not an array" a

(* Cost charge for one access of [width] bytes at the given site mode. *)
let charge ctx mode width =
  let cost = ctx.cost in
  match mode with
  | Coalesce.Broadcast -> fun () -> cost.Cost.broadcast_bytes <- cost.Cost.broadcast_bytes + width
  | Coalesce.Coalesced -> fun () -> cost.Cost.coalesced_bytes <- cost.Cost.coalesced_bytes + width
  | Coalesce.Strided _ | Coalesce.Random ->
      fun () ->
        cost.Cost.random_accesses <- cost.Cost.random_accesses + 1;
        cost.Cost.random_bytes <- cost.Cost.random_bytes + width

(* ------------------------------------------------------------------ *)
(* Expression compilation.                                             *)
(* ------------------------------------------------------------------ *)

let rec comp_f ctx e : Frame.t -> float =
  match ty_of ctx e with
  | Tint ->
      let f = comp_i ctx e in
      fun fr -> float_of_int (f fr)
  | Tdouble -> comp_f_native ctx e
  | t -> Loc.error e.eloc "expected numeric expression, got %s" (typ_to_string t)

and comp_f_native ctx e : Frame.t -> float =
  let cost = ctx.cost in
  match e.edesc with
  | Float_lit v -> fun _ -> v
  | Var v -> (
      match slot_of ctx e.eloc v with
      | Frame.Float_slot i, _ -> fun fr -> Array.unsafe_get fr.Frame.floats i
      | _ -> Loc.error e.eloc "%s is not a double variable" v)
  | Index (a, idx) ->
      let vi, elem = view_slot_of ctx e.eloc a in
      if elem <> Edouble then Loc.error e.eloc "%s is not a double array" a;
      let ci = comp_i ctx idx in
      let bump = charge ctx (ctx.classify a idx) 8 in
      fun fr ->
        bump ();
        (Frame.get_view fr vi).View.get_f (ci fr)
  | Unop (Neg, x) ->
      let f = comp_f ctx x in
      fun fr ->
        cost.Cost.flops <- cost.Cost.flops + 1;
        -.f fr
  | Unop (Cast_double, x) -> comp_f ctx x
  | Unop ((Not | Bit_not | Cast_int), _) -> assert false (* typed Tint *)
  | Binop (op, x, y) -> (
      let fx = comp_f ctx x and fy = comp_f ctx y in
      let arith op2 =
        fun fr ->
          cost.Cost.flops <- cost.Cost.flops + 1;
          op2 (fx fr) (fy fr)
      in
      match op with
      | Add -> arith ( +. )
      | Sub -> arith ( -. )
      | Mul -> arith ( *. )
      | Div -> arith ( /. )
      | Mod | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor | Band | Bor | Bxor | Shl | Shr ->
          assert false (* typed Tint *))
  | Ternary (c, a, b) ->
      let cc = comp_i ctx c and fa = comp_f ctx a and fb = comp_f ctx b in
      fun fr ->
        cost.Cost.int_ops <- cost.Cost.int_ops + 1;
        if cc fr <> 0 then fa fr else fb fr
  | Call (name, args) -> (
      match Builtins.find name with
      | Some b when b.Builtins.result = Tdouble -> (
          let flops = b.Builtins.flops in
          match List.map (comp_f ctx) args with
          | [ a1 ] ->
              let g = (fun x -> Builtins.apply_double name [ x ]) in
              fun fr ->
                cost.Cost.flops <- cost.Cost.flops + flops;
                g (a1 fr)
          | [ a1; a2 ] ->
              let g = (fun x y -> Builtins.apply_double name [ x; y ]) in
              fun fr ->
                cost.Cost.flops <- cost.Cost.flops + flops;
                g (a1 fr) (a2 fr)
          | _ -> Loc.error e.eloc "unsupported builtin arity for %s" name)
      | Some _ -> assert false (* int builtin: typed Tint *)
      | None -> Loc.error e.eloc "user function calls are not allowed in kernels: %s" name)
  | Int_lit _ | Length _ -> assert false (* typed Tint *)

and comp_i ctx e : Frame.t -> int =
  match ty_of ctx e with
  | Tdouble ->
      (* C-style implicit truncation. *)
      let f = comp_f_native ctx e in
      fun fr -> int_of_float (f fr)
  | Tint -> comp_i_native ctx e
  | t -> Loc.error e.eloc "expected numeric expression, got %s" (typ_to_string t)

and comp_i_native ctx e : Frame.t -> int =
  let cost = ctx.cost in
  match e.edesc with
  | Int_lit v -> fun _ -> v
  | Var v -> (
      match slot_of ctx e.eloc v with
      | Frame.Int_slot i, _ -> fun fr -> Array.unsafe_get fr.Frame.ints i
      | _ -> Loc.error e.eloc "%s is not an int variable" v)
  | Length a ->
      let vi, _ = view_slot_of ctx e.eloc a in
      fun fr -> (Frame.get_view fr vi).View.length
  | Index (a, idx) ->
      let vi, elem = view_slot_of ctx e.eloc a in
      if elem <> Eint then Loc.error e.eloc "%s is not an int array" a;
      let ci = comp_i ctx idx in
      let bump = charge ctx (ctx.classify a idx) 4 in
      fun fr ->
        bump ();
        (Frame.get_view fr vi).View.get_i (ci fr)
  | Unop (Neg, x) ->
      let f = comp_i ctx x in
      fun fr ->
        cost.Cost.int_ops <- cost.Cost.int_ops + 1;
        -f fr
  | Unop (Not, x) ->
      let t = ty_of ctx x in
      if t = Tdouble then begin
        let f = comp_f ctx x in
        fun fr ->
          cost.Cost.flops <- cost.Cost.flops + 1;
          if f fr = 0.0 then 1 else 0
      end
      else begin
        let f = comp_i ctx x in
        fun fr ->
          cost.Cost.int_ops <- cost.Cost.int_ops + 1;
          if f fr = 0 then 1 else 0
      end
  | Unop (Bit_not, x) ->
      let f = comp_i ctx x in
      fun fr ->
        cost.Cost.int_ops <- cost.Cost.int_ops + 1;
        lnot (f fr)
  | Unop (Cast_int, x) -> (
      match ty_of ctx x with
      | Tdouble ->
          let f = comp_f_native ctx x in
          fun fr ->
            cost.Cost.int_ops <- cost.Cost.int_ops + 1;
            int_of_float (f fr)
      | _ -> comp_i ctx x)
  | Unop (Cast_double, _) -> assert false (* typed Tdouble *)
  | Binop (((Eq | Ne | Lt | Le | Gt | Ge) as op), x, y) ->
      let tx = ty_of ctx x and ty_ = ty_of ctx y in
      if tx = Tdouble || ty_ = Tdouble then begin
        let fx = comp_f ctx x and fy = comp_f ctx y in
        let cmp : float -> float -> bool =
          match op with
          | Eq -> ( = )
          | Ne -> ( <> )
          | Lt -> ( < )
          | Le -> ( <= )
          | Gt -> ( > )
          | Ge -> ( >= )
          | _ -> assert false
        in
        fun fr ->
          cost.Cost.flops <- cost.Cost.flops + 1;
          if cmp (fx fr) (fy fr) then 1 else 0
      end
      else begin
        let fx = comp_i ctx x and fy = comp_i ctx y in
        let cmp : int -> int -> bool =
          match op with
          | Eq -> ( = )
          | Ne -> ( <> )
          | Lt -> ( < )
          | Le -> ( <= )
          | Gt -> ( > )
          | Ge -> ( >= )
          | _ -> assert false
        in
        fun fr ->
          cost.Cost.int_ops <- cost.Cost.int_ops + 1;
          if cmp (fx fr) (fy fr) then 1 else 0
      end
  | Binop (Land, x, y) ->
      let fx = comp_i ctx x and fy = comp_i ctx y in
      fun fr ->
        cost.Cost.int_ops <- cost.Cost.int_ops + 1;
        if fx fr <> 0 && fy fr <> 0 then 1 else 0
  | Binop (Lor, x, y) ->
      let fx = comp_i ctx x and fy = comp_i ctx y in
      fun fr ->
        cost.Cost.int_ops <- cost.Cost.int_ops + 1;
        if fx fr <> 0 || fy fr <> 0 then 1 else 0
  | Binop (op, x, y) -> (
      let fx = comp_i ctx x and fy = comp_i ctx y in
      let arith op2 =
        fun fr ->
          cost.Cost.int_ops <- cost.Cost.int_ops + 1;
          op2 (fx fr) (fy fr)
      in
      match op with
      | Add -> arith ( + )
      | Sub -> arith ( - )
      | Mul -> arith ( * )
      | Div -> arith ( / )
      | Mod -> arith (fun a b -> a mod b)
      | Band -> arith ( land )
      | Bor -> arith ( lor )
      | Bxor -> arith ( lxor )
      | Shl -> arith ( lsl )
      | Shr -> arith ( asr )
      | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor -> assert false)
  | Ternary (c, a, b) ->
      let cc = comp_i ctx c and fa = comp_i ctx a and fb = comp_i ctx b in
      fun fr ->
        cost.Cost.int_ops <- cost.Cost.int_ops + 1;
        if cc fr <> 0 then fa fr else fb fr
  | Call (name, args) -> (
      match Builtins.find name with
      | Some b when b.Builtins.result = Tint -> (
          let flops = b.Builtins.flops in
          match List.map (comp_i ctx) args with
          | [ a1 ] ->
              fun fr ->
                cost.Cost.int_ops <- cost.Cost.int_ops + flops;
                Builtins.apply_int name [ a1 fr ]
          | [ a1; a2 ] ->
              fun fr ->
                cost.Cost.int_ops <- cost.Cost.int_ops + flops;
                Builtins.apply_int name [ a1 fr; a2 fr ]
          | _ -> Loc.error e.eloc "unsupported builtin arity for %s" name)
      | Some _ -> assert false
      | None -> Loc.error e.eloc "user function calls are not allowed in kernels: %s" name)
  | Float_lit _ -> assert false (* typed Tdouble *)

(* ------------------------------------------------------------------ *)
(* Statement compilation.                                              *)
(* ------------------------------------------------------------------ *)

let nop : Frame.t -> unit = fun _ -> ()

let seq fs =
  match fs with
  | [] -> nop
  | [ f ] -> f
  | fs ->
      let arr = Array.of_list fs in
      fun fr -> Array.iter (fun f -> f fr) arr

let apply_binop_assign_int op =
  match op with
  | Set -> fun _ rhs -> rhs
  | Add_set -> ( + )
  | Sub_set -> ( - )
  | Mul_set -> ( * )
  | Div_set -> ( / )

let apply_binop_assign_float op =
  match op with
  | Set -> fun _ rhs -> rhs
  | Add_set -> ( +. )
  | Sub_set -> ( -. )
  | Mul_set -> ( *. )
  | Div_set -> ( /. )

let rec comp_stmt ctx s : Frame.t -> unit =
  let cost = ctx.cost in
  match s.sdesc with
  | Sdecl (ty, name, init) -> (
      let slot = Frame.Layout.declare ctx.layout s.sloc name ty in
      match (ty, slot, init) with
      | Tint, Frame.Int_slot i, None -> fun fr -> Array.unsafe_set fr.Frame.ints i 0
      | Tint, Frame.Int_slot i, Some e ->
          let f = comp_i ctx e in
          fun fr -> Array.unsafe_set fr.Frame.ints i (f fr)
      | Tdouble, Frame.Float_slot i, None -> fun fr -> Array.unsafe_set fr.Frame.floats i 0.0
      | Tdouble, Frame.Float_slot i, Some e ->
          let f = comp_f ctx e in
          fun fr -> Array.unsafe_set fr.Frame.floats i (f fr)
      | _ -> Loc.error s.sloc "unsupported declaration in kernel")
  | Sarray_decl (_, name, _) ->
      Loc.error s.sloc "array declaration of %s not allowed inside a kernel" name
  | Sassign (Lvar v, op, rhs) -> (
      match slot_of ctx s.sloc v with
      | Frame.Int_slot i, _ ->
          let f = comp_i ctx rhs in
          if op = Set then fun fr -> Array.unsafe_set fr.Frame.ints i (f fr)
          else
            let g = apply_binop_assign_int op in
            fun fr ->
              cost.Cost.int_ops <- cost.Cost.int_ops + 1;
              Array.unsafe_set fr.Frame.ints i (g (Array.unsafe_get fr.Frame.ints i) (f fr))
      | Frame.Float_slot i, _ ->
          let f = comp_f ctx rhs in
          if op = Set then fun fr -> Array.unsafe_set fr.Frame.floats i (f fr)
          else
            let g = apply_binop_assign_float op in
            fun fr ->
              cost.Cost.flops <- cost.Cost.flops + 1;
              Array.unsafe_set fr.Frame.floats i (g (Array.unsafe_get fr.Frame.floats i) (f fr))
      | Frame.View_slot _, _ -> Loc.error s.sloc "cannot assign whole array %s" v)
  | Sassign (Lindex (a, idx), op, rhs) ->
      let vi, elem = view_slot_of ctx s.sloc a in
      let ci = comp_i ctx idx in
      let width = elem_ty_size elem in
      let bump_w = charge ctx (ctx.classify a idx) width in
      (match elem with
      | Edouble ->
          let f = comp_f ctx rhs in
          if op = Set then
            fun fr ->
              bump_w ();
              (Frame.get_view fr vi).View.set_f (ci fr) (f fr)
          else
            let g = apply_binop_assign_float op in
            let bump_r = charge ctx (ctx.classify a idx) width in
            fun fr ->
              cost.Cost.flops <- cost.Cost.flops + 1;
              bump_r ();
              bump_w ();
              let view = Frame.get_view fr vi in
              let i = ci fr in
              view.View.set_f i (g (view.View.get_f i) (f fr))
      | Eint ->
          let f = comp_i ctx rhs in
          if op = Set then
            fun fr ->
              bump_w ();
              (Frame.get_view fr vi).View.set_i (ci fr) (f fr)
          else
            let g = apply_binop_assign_int op in
            let bump_r = charge ctx (ctx.classify a idx) width in
            fun fr ->
              cost.Cost.int_ops <- cost.Cost.int_ops + 1;
              bump_r ();
              bump_w ();
              let view = Frame.get_view fr vi in
              let i = ci fr in
              view.View.set_i i (g (view.View.get_i i) (f fr)))
  | Sincr (lv, d) ->
      comp_stmt ctx
        { s with sdesc = Sassign (lv, Add_set, { edesc = Int_lit d; eloc = s.sloc }) }
  | Sexpr e ->
      let t = ty_of ctx e in
      if t = Tdouble then begin
        let f = comp_f ctx e in
        fun fr -> ignore (f fr)
      end
      else begin
        let f = comp_i ctx e in
        fun fr -> ignore (f fr)
      end
  | Sif (c, then_, else_) ->
      let cc = comp_i ctx c in
      let ct = comp_block ctx then_ and ce = comp_block ctx else_ in
      fun fr ->
        cost.Cost.int_ops <- cost.Cost.int_ops + 1;
        if cc fr <> 0 then ct fr else ce fr
  | Swhile (c, body) ->
      let cc = comp_i ctx c in
      let cb = comp_block ctx body in
      fun fr ->
        (try
           while
             cost.Cost.int_ops <- cost.Cost.int_ops + 1;
             cc fr <> 0
           do
             try cb fr with Cnt -> ()
           done
         with Brk -> ())
  | Sfor (hdr, body) ->
      Frame.Layout.enter_scope ctx.layout;
      let init = match hdr.for_init with Some s' -> comp_stmt ctx s' | None -> nop in
      let cond = match hdr.for_cond with Some e -> comp_i ctx e | None -> fun _ -> 1 in
      let update = match hdr.for_update with Some s' -> comp_stmt ctx s' | None -> nop in
      let cb = comp_block_no_scope ctx body in
      Frame.Layout.leave_scope ctx.layout;
      fun fr ->
        init fr;
        (try
           while
             cost.Cost.int_ops <- cost.Cost.int_ops + 1;
             cond fr <> 0
           do
             (try cb fr with Cnt -> ());
             update fr
           done
         with Brk -> ())
  | Sreturn _ -> Loc.error s.sloc "return is not allowed inside a kernel"
  | Sbreak -> fun _ -> raise Brk
  | Scontinue -> fun _ -> raise Cnt
  | Sblock body -> comp_block ctx body
  | Spragma (Dreduction_to_array { rta_op; rta_array }, inner) ->
      let idx, contrib = extract_reduction rta_op inner in
      let vi, elem = view_slot_of ctx s.sloc rta_array in
      let ci = comp_i ctx idx in
      let width = elem_ty_size elem in
      (* A reduction update behaves like an atomic scatter: charge one
         transaction plus the combine op. *)
      (match elem with
      | Edouble ->
          let cf = comp_f ctx contrib in
          fun fr ->
            cost.Cost.flops <- cost.Cost.flops + 1;
            cost.Cost.random_accesses <- cost.Cost.random_accesses + 1;
            cost.Cost.random_bytes <- cost.Cost.random_bytes + width;
            (Frame.get_view fr vi).View.reduce_f rta_op (ci fr) (cf fr)
      | Eint ->
          let cf = comp_i ctx contrib in
          fun fr ->
            cost.Cost.int_ops <- cost.Cost.int_ops + 1;
            cost.Cost.random_accesses <- cost.Cost.random_accesses + 1;
            cost.Cost.random_bytes <- cost.Cost.random_bytes + width;
            (Frame.get_view fr vi).View.reduce_i rta_op (ci fr) (cf fr))
  | Spragma ((Dparallel_loop _ | Dlocalaccess _), inner) ->
      (* Nested parallelism: the inner loop's iterations map to vector
         lanes. Executing them in order is a valid schedule; the launcher
         separately multiplies the thread count for occupancy. *)
      comp_stmt ctx inner
  | Spragma (d, _) ->
      Loc.error s.sloc "directive not allowed inside a kernel body: %s"
        (Pretty.directive_to_string d)

and comp_block ctx body =
  Frame.Layout.enter_scope ctx.layout;
  let f = comp_block_no_scope ctx body in
  Frame.Layout.leave_scope ctx.layout;
  f

and comp_block_no_scope ctx body = seq (List.map (comp_stmt ctx) body)

(* ------------------------------------------------------------------ *)
(* Entry point.                                                        *)
(* ------------------------------------------------------------------ *)

let compile ~loop ~params ~classify =
  let layout = Frame.Layout.create () in
  let cost = Cost.zero () in
  let ctx = { layout; cost; classify } in
  let loop_loc = loop.Mgacc_analysis.Loop_info.loop_loc in
  let iv_slot =
    Frame.Layout.declare layout loop_loc loop.Mgacc_analysis.Loop_info.loop_var Tint
  in
  let param_slots =
    List.map (fun (name, ty) -> (name, Frame.Layout.declare layout loop_loc name ty, ty)) params
  in
  let body = comp_block ctx loop.Mgacc_analysis.Loop_info.body in
  let iv_index = match iv_slot with Frame.Int_slot i -> i | _ -> assert false in
  {
    run_iter =
      (fun fr i ->
        Array.unsafe_set fr.Frame.ints iv_index i;
        body fr);
    make_frame = (fun () -> Frame.create layout);
    params = param_slots;
    cost;
  }
