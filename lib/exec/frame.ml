open Mgacc_minic

type slot = Int_slot of int | Float_slot of int | View_slot of int

type t = { ints : int array; floats : float array; views : View.t option array }

module Layout = struct
  type t = {
    mutable n_ints : int;
    mutable n_floats : int;
    mutable n_views : int;
    mutable scopes : (string, slot * Ast.typ) Hashtbl.t list;
  }

  let create () = { n_ints = 0; n_floats = 0; n_views = 0; scopes = [ Hashtbl.create 8 ] }
  let enter_scope t = t.scopes <- Hashtbl.create 8 :: t.scopes

  let leave_scope t =
    match t.scopes with
    | [] | [ _ ] -> invalid_arg "Frame.Layout.leave_scope: no scope to leave"
    | _ :: rest -> t.scopes <- rest

  let declare t loc name ty =
    let scope = match t.scopes with [] -> assert false | s :: _ -> s in
    if Hashtbl.mem scope name then Loc.error loc "redeclaration of %s" name;
    let slot =
      match ty with
      | Ast.Tint ->
          let s = Int_slot t.n_ints in
          t.n_ints <- t.n_ints + 1;
          s
      | Ast.Tdouble ->
          let s = Float_slot t.n_floats in
          t.n_floats <- t.n_floats + 1;
          s
      | Ast.Tarray _ ->
          let s = View_slot t.n_views in
          t.n_views <- t.n_views + 1;
          s
      | Ast.Tvoid -> Loc.error loc "void variable %s" name
    in
    Hashtbl.replace scope name (slot, ty);
    slot

  let lookup t name =
    let rec go = function
      | [] -> None
      | scope :: rest -> (
          match Hashtbl.find_opt scope name with Some v -> Some v | None -> go rest)
    in
    go t.scopes

  let int_bank_size t = t.n_ints
  let float_bank_size t = t.n_floats
  let view_bank_size t = t.n_views
end

let create (layout : Layout.t) =
  {
    ints = Array.make (max 1 (Layout.int_bank_size layout)) 0;
    floats = Array.make (max 1 (Layout.float_bank_size layout)) 0.0;
    views = Array.make (max 1 (Layout.view_bank_size layout)) None;
  }

let set_view t slot v =
  match slot with
  | View_slot i -> t.views.(i) <- Some v
  | Int_slot _ | Float_slot _ -> invalid_arg "Frame.set_view: not a view slot"

let get_view t i =
  match t.views.(i) with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Frame.get_view: unbound view slot %d" i)

let set_int t slot v =
  match slot with
  | Int_slot i -> t.ints.(i) <- v
  | Float_slot _ | View_slot _ -> invalid_arg "Frame.set_int: not an int slot"

let set_float t slot v =
  match slot with
  | Float_slot i -> t.floats.(i) <- v
  | Int_slot _ | View_slot _ -> invalid_arg "Frame.set_float: not a float slot"

let get_int t = function
  | Int_slot i -> t.ints.(i)
  | Float_slot _ | View_slot _ -> invalid_arg "Frame.get_int: not an int slot"

let get_float t = function
  | Float_slot i -> t.floats.(i)
  | Int_slot _ | View_slot _ -> invalid_arg "Frame.get_float: not a float slot"
