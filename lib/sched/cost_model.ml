module Machine = Mgacc_gpusim.Machine
module Device = Mgacc_gpusim.Device
module Spec = Mgacc_gpusim.Spec
module Cost = Mgacc_gpusim.Cost
module Kernel_cost = Mgacc_gpusim.Kernel_cost

let homogeneous machine ~num_gpus =
  let spec g = (Machine.device machine g).Device.spec in
  let first = spec 0 in
  let ok = ref true in
  for g = 1 to num_gpus - 1 do
    if spec g <> first then ok := false
  done;
  !ok

let uniform n =
  if n <= 0 then invalid_arg "Cost_model.uniform: n <= 0";
  Array.make n (1.0 /. float_of_int n)

(* A kernel we know nothing about: assume the memory-bound mix typical of
   the paper's applications (one flop and a couple of streamed operands per
   iteration) so that bandwidth differences between devices register. *)
let nominal_iter_cost () =
  {
    Cost.flops = 2;
    int_ops = 2;
    coalesced_bytes = 24;
    broadcast_bytes = 0;
    random_accesses = 0;
    random_bytes = 0;
  }

let device_rates machine ~num_gpus ~iterations ~threads_per_iter ~iter_cost =
  if num_gpus <= 0 then invalid_arg "Cost_model.device_rates: num_gpus <= 0";
  let iter_cost = if Cost.is_zero iter_cost then nominal_iter_cost () else iter_cost in
  let n = max 1 iterations in
  let total = Cost.scale iter_cost n in
  Array.init num_gpus (fun g ->
      let spec = (Machine.device machine g).Device.spec in
      (* Marginal throughput: drop the per-launch overhead. It is paid
         once regardless of the share, so folding it into the rate would
         skew weights by a constant the split cannot recover — and make
         them wobble with the loop's cost vector, defeating reuse of one
         partitioning across similar loops. *)
      let d =
        Kernel_cost.duration spec ~threads:(n * max 1 threads_per_iter) total
        -. spec.Spec.kernel_launch_overhead
      in
      float_of_int n /. Float.max d 1e-12)

let normalize ?(min_share = 0.01) weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Cost_model.normalize: empty";
  Array.iter
    (fun w ->
      if (not (Float.is_finite w)) || w < 0.0 then
        invalid_arg "Cost_model.normalize: negative or non-finite weight")
    weights;
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Cost_model.normalize: all-zero weights";
  let w = Array.map (fun x -> Float.max min_share (x /. total)) weights in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

let quantize ?(grid = 64) weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Cost_model.quantize: empty";
  if grid < n then invalid_arg "Cost_model.quantize: grid finer than weight count";
  (* Largest-remainder apportionment of [grid] units, at least one unit
     per device so nobody quantizes to zero. *)
  let quota = Array.map (fun w -> w *. float_of_int grid) weights in
  let units = Array.map (fun q -> max 1 (int_of_float (Float.floor q))) quota in
  let used = Array.fold_left ( + ) 0 units in
  let by_frac =
    List.sort
      (fun a b ->
        let fa = quota.(a) -. Float.floor quota.(a) and fb = quota.(b) -. Float.floor quota.(b) in
        if fa = fb then compare a b else compare fb fa)
      (List.init n Fun.id)
  in
  let leftover = ref (grid - used) in
  List.iter
    (fun g ->
      if !leftover > 0 then begin
        units.(g) <- units.(g) + 1;
        decr leftover
      end)
    by_frac;
  (* A negative leftover (min-1 bumps overshot) only happens when many
     weights sit below one unit; shave the largest holders. *)
  while Array.fold_left ( + ) 0 units > grid do
    let gmax = ref 0 in
    Array.iteri (fun g u -> if u > units.(!gmax) then gmax := g) units;
    units.(!gmax) <- units.(!gmax) - 1
  done;
  Array.map (fun u -> float_of_int u /. float_of_int grid) units

(* Roofline duration estimate for one launch if the loop were split
   perfectly across the devices: total iterations over the summed device
   rates. This is what the fleet's shortest-job-first policy ranks
   un-measured jobs by — relative ordering is all that matters. *)
let estimate_launch_seconds machine ~num_gpus ~iterations ~threads_per_iter ~iter_cost =
  let rates = device_rates machine ~num_gpus ~iterations ~threads_per_iter ~iter_cost in
  let total_rate = Array.fold_left ( +. ) 0.0 rates in
  float_of_int (max 1 iterations) /. Float.max total_rate 1e-12

let seed_weights machine ~num_gpus ~iterations ~threads_per_iter ~iter_cost =
  if homogeneous machine ~num_gpus then uniform num_gpus
  else
    quantize (normalize (device_rates machine ~num_gpus ~iterations ~threads_per_iter ~iter_cost))
