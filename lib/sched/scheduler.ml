let log_src = Logs.Src.create "mgacc.sched" ~doc:"adaptive multi-GPU scheduler"

module Log = (val Logs.src_log log_src : Logs.LOG)

type workload = Uniform | Irregular

type loop_state = {
  mutable weights : float array option;  (** None = equal split *)
  feedback : Feedback.t;
}

type t = {
  machine : Mgacc_gpusim.Machine.t;
  num_gpus : int;
  policy : Policy.t;
  knobs : Feedback.knobs;
  loops : (int, loop_state) Hashtbl.t;
  mutable rebalances : int;
}

let create ~machine ~num_gpus ~policy ~knobs =
  if num_gpus <= 0 then invalid_arg "Scheduler.create: num_gpus <= 0";
  { machine; num_gpus; policy; knobs; loops = Hashtbl.create 8; rebalances = 0 }

let policy t = t.policy

let seed t ~iterations ~threads_per_iter ~iter_cost ~workload =
  match (t.policy, workload) with
  | Policy.Equal, _ -> None
  | Policy.Adaptive, Irregular ->
      (* A static model cannot see per-iteration skew; start even and let
         the feedback find the real rates. *)
      None
  | (Policy.Proportional | Policy.Adaptive), _ ->
      if Cost_model.homogeneous t.machine ~num_gpus:t.num_gpus then None
      else
        Some
          (Cost_model.seed_weights t.machine ~num_gpus:t.num_gpus ~iterations ~threads_per_iter
             ~iter_cost)

let state_for t ~loop_id ~iterations ~threads_per_iter ~iter_cost ~workload =
  match Hashtbl.find_opt t.loops loop_id with
  | Some s -> s
  | None ->
      let s =
        {
          weights = seed t ~iterations ~threads_per_iter ~iter_cost ~workload;
          feedback = Feedback.create t.knobs ~num_gpus:t.num_gpus;
        }
      in
      (match s.weights with
      | Some w ->
          Log.debug (fun m ->
              m "loop %d: proportional seed [%s]" loop_id
                (String.concat "; " (List.map (Printf.sprintf "%.3f") (Array.to_list w))))
      | None -> ());
      Hashtbl.replace t.loops loop_id s;
      s

let weights_for t ~loop_id ~iterations ~threads_per_iter ~iter_cost ~workload =
  if t.num_gpus < 2 then None
  else (state_for t ~loop_id ~iterations ~threads_per_iter ~iter_cost ~workload).weights

let observe t ~loop_id ~iterations ~seconds ~total_iterations ~bytes_per_iter =
  if t.policy <> Policy.Adaptive || t.num_gpus < 2 then false
  else
    match Hashtbl.find_opt t.loops loop_id with
    | None -> false
    | Some s -> (
        Feedback.observe s.feedback ~iterations ~seconds;
        let current =
          match s.weights with Some w -> w | None -> Cost_model.uniform t.num_gpus
        in
        match Feedback.rates s.feedback with
        | None -> false
        | Some rates -> (
            let proposed =
              Cost_model.quantize
                (Cost_model.normalize ~min_share:t.knobs.Feedback.min_share rates)
            in
            Log.debug (fun m ->
                m "loop %d: rates [%s] propose [%s] vs current [%s]" loop_id
                  (String.concat "; " (List.map (Printf.sprintf "%.3e") (Array.to_list rates)))
                  (String.concat "; " (List.map (Printf.sprintf "%.3f") (Array.to_list proposed)))
                  (String.concat "; " (List.map (Printf.sprintf "%.3f") (Array.to_list current))));
            if proposed = current then false
            else
              let t_cur = Feedback.launch_time ~weights:current ~rates in
              let t_new = Feedback.launch_time ~weights:proposed ~rates in
              if t_cur <= 0.0 || (t_cur -. t_new) /. t_cur <= t.knobs.Feedback.hysteresis then
                false
              else
                match
                  Planner.decide ~machine:t.machine ~knobs:t.knobs ~current ~proposed ~rates
                    ~iterations:total_iterations ~bytes_per_iter
                with
                | Planner.Keep -> false
                | Planner.Rebalance { weights; predicted_gain; predicted_move } ->
                    Log.debug (fun m ->
                        m "loop %d: rebalance to [%s] (gain %.3es/launch, move %.3es)" loop_id
                          (String.concat "; "
                             (List.map (Printf.sprintf "%.3f") (Array.to_list weights)))
                          predicted_gain predicted_move);
                    s.weights <- Some weights;
                    t.rebalances <- t.rebalances + 1;
                    true))

let observe_events t ~loop_id ~iterations ~starts ~finishes ~total_iterations ~bytes_per_iter =
  if Array.length starts <> Array.length finishes then
    invalid_arg "Scheduler.observe_events: starts/finishes length mismatch";
  let seconds = Array.init (Array.length starts) (fun g -> finishes.(g) -. starts.(g)) in
  observe t ~loop_id ~iterations ~seconds ~total_iterations ~bytes_per_iter

let rebalances t = t.rebalances
