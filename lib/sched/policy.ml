type t = Equal | Proportional | Adaptive

let of_string = function
  | "static" | "equal" -> Ok Equal
  | "proportional" -> Ok Proportional
  | "adaptive" -> Ok Adaptive
  | other ->
      Error (Printf.sprintf "unknown schedule %S (static|proportional|adaptive)" other)

let to_string = function
  | Equal -> "static"
  | Proportional -> "proportional"
  | Adaptive -> "adaptive"

let pp ppf t = Format.pp_print_string ppf (to_string t)
