type knobs = {
  alpha : float;
  hysteresis : float;
  payoff_launches : float;
  min_share : float;
}

let default_knobs = { alpha = 0.5; hysteresis = 0.02; payoff_launches = 4.0; min_share = 0.02 }

type t = {
  knobs : knobs;
  rates : float array;  (** 0.0 = no sample yet *)
  mutable samples : int;
}

let create knobs ~num_gpus =
  if num_gpus <= 0 then invalid_arg "Feedback.create: num_gpus <= 0";
  if knobs.alpha <= 0.0 || knobs.alpha > 1.0 then invalid_arg "Feedback.create: alpha not in (0,1]";
  if knobs.hysteresis < 0.0 then invalid_arg "Feedback.create: negative hysteresis";
  { knobs; rates = Array.make num_gpus 0.0; samples = 0 }

let observe t ~iterations ~seconds =
  let n = Array.length t.rates in
  if Array.length iterations <> n || Array.length seconds <> n then
    invalid_arg "Feedback.observe: arity mismatch";
  Array.iteri
    (fun g iters ->
      if iters > 0 && seconds.(g) > 0.0 then begin
        let rate = float_of_int iters /. seconds.(g) in
        t.rates.(g) <-
          (if t.rates.(g) = 0.0 then rate
           else (t.knobs.alpha *. rate) +. ((1.0 -. t.knobs.alpha) *. t.rates.(g)))
      end)
    iterations;
  t.samples <- t.samples + 1

let rates t = if Array.exists (fun r -> r = 0.0) t.rates then None else Some (Array.copy t.rates)

let proposed_weights t =
  Option.map (Cost_model.normalize ~min_share:t.knobs.min_share) (rates t)

(* Per-launch kernel time is the straggler's: T(w) = max_g (w_g / r_g),
   up to the common factor of the iteration count. *)
let launch_time ~weights ~rates =
  let worst = ref 0.0 in
  Array.iteri (fun g w -> worst := Float.max !worst (w /. Float.max rates.(g) 1e-12)) weights;
  !worst

let predicted_gain t ~current =
  match rates t with
  | None -> 0.0
  | Some r -> (
      match proposed_weights t with
      | None -> 0.0
      | Some p ->
          let t_cur = launch_time ~weights:current ~rates:r in
          let t_new = launch_time ~weights:p ~rates:r in
          if t_cur <= 0.0 then 0.0 else Float.max 0.0 ((t_cur -. t_new) /. t_cur))

let samples t = t.samples
