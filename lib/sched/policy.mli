(** Iteration-partitioning policies.

    [Equal] is the paper's §IV-B-2 scheme: every GPU receives the same
    number of iterations (±1). [Proportional] seeds each GPU's share from
    its roofline throughput for the kernel at hand, which only differs
    from [Equal] on heterogeneous machines. [Adaptive] starts from the
    proportional seed and re-splits from per-launch feedback, damped by an
    EWMA and gated by a hysteresis threshold and a gain-vs-movement-cost
    planner. *)

type t = Equal | Proportional | Adaptive

val of_string : string -> (t, string) result
(** Accepts ["static"]/["equal"], ["proportional"], ["adaptive"]. *)

val to_string : t -> string
(** ["static"], ["proportional"] or ["adaptive"] (the CLI spelling). *)

val pp : Format.formatter -> t -> unit
