module Machine = Mgacc_gpusim.Machine
module Fabric = Mgacc_gpusim.Fabric

type decision =
  | Keep
  | Rebalance of {
      weights : float array;
      predicted_gain : float;
      predicted_move : float;
    }

let move_bytes ~current ~proposed ~iterations ~bytes_per_iter =
  let moved_fraction = ref 0.0 in
  Array.iteri
    (fun g w -> moved_fraction := !moved_fraction +. Float.max 0.0 (proposed.(g) -. w))
    current;
  int_of_float
    (Float.round (!moved_fraction *. float_of_int iterations *. float_of_int bytes_per_iter))

let decide ~machine ~(knobs : Feedback.knobs) ~current ~proposed ~rates ~iterations
    ~bytes_per_iter =
  let n = float_of_int (max 1 iterations) in
  let launch_time weights =
    let worst = ref 0.0 in
    Array.iteri
      (fun g w -> worst := Float.max !worst (w *. n /. Float.max rates.(g) 1e-12))
      weights;
    !worst
  in
  let t_cur = launch_time current and t_new = launch_time proposed in
  let gain = t_cur -. t_new in
  if t_cur <= 0.0 || gain /. t_cur <= knobs.Feedback.hysteresis then Keep
  else begin
    let bytes = move_bytes ~current ~proposed ~iterations ~bytes_per_iter in
    let move =
      if bytes = 0 || Array.length current < 2 then 0.0
      else
        (* Displaced blocks ship peer-to-peer between neighbours; price one
           representative link rather than simulating the exact exchange. *)
        Fabric.transfer_time_alone machine.Machine.fabric
          (Fabric.P2p (0, Array.length current - 1))
          ~bytes
    in
    if gain *. knobs.Feedback.payoff_launches > move then
      Rebalance { weights = Array.copy proposed; predicted_gain = gain; predicted_move = move }
    else Keep
  end
