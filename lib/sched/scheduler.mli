(** The adaptive multi-GPU scheduler the runtime consults on every launch.

    One scheduler lives per runtime instance and keeps per-loop state: the
    committed weight vector plus that loop's feedback controller. The
    runtime asks {!weights_for} before splitting an iteration space and
    reports measured per-GPU kernel times through {!observe}; under the
    [Adaptive] policy the observation may commit a re-split for the next
    launch of the same loop (gated by the controller's hysteresis and the
    planner's gain-vs-movement-cost test).

    Policy behavior:
    - [Equal]: {!weights_for} is always [None] — the caller uses the
      paper's equal split, bit-identical to the original runtime.
    - [Proportional]: a static seed from the roofline cost model; [None]
      on homogeneous machines (falls back to the equal split).
    - [Adaptive]: the proportional seed (equal for loops the translator
      flags as irregular, where per-iteration cost skew defeats a static
      model), then feedback-driven re-splits. *)

type workload = Uniform | Irregular

type t

val create :
  machine:Mgacc_gpusim.Machine.t ->
  num_gpus:int ->
  policy:Policy.t ->
  knobs:Feedback.knobs ->
  t

val policy : t -> Policy.t

val weights_for :
  t ->
  loop_id:int ->
  iterations:int ->
  threads_per_iter:int ->
  iter_cost:Mgacc_gpusim.Cost.t ->
  workload:workload ->
  float array option
(** The split to use for this launch; [None] means the equal split. *)

val observe :
  t ->
  loop_id:int ->
  iterations:int array ->
  seconds:float array ->
  total_iterations:int ->
  bytes_per_iter:int ->
  bool
(** Report one launch's per-GPU iteration counts and kernel seconds.
    Returns [true] when a re-split was committed for the loop's next
    launch (only ever under [Adaptive]). *)

val observe_events :
  t ->
  loop_id:int ->
  iterations:int array ->
  starts:float array ->
  finishes:float array ->
  total_iterations:int ->
  bytes_per_iter:int ->
  bool
(** {!observe} for the overlap engine: per-GPU kernel start/finish events
    instead of durations. Each GPU's rate comes from its own busy span
    [finish - start], so event-gated launches (where GPUs no longer start
    together) still feed the controller unskewed. With a common start this
    is exactly {!observe}. *)

val rebalances : t -> int
(** Total re-splits committed across all loops. *)
