(** Static partitioner: seed per-GPU iteration shares from the roofline.

    Given the machine's device specs and a per-iteration cost estimate of
    the kernel at hand (the translator's static hint, or a measured
    record), predict each GPU's sustained iteration rate with the same
    roofline model the simulator charges ({!Mgacc_gpusim.Kernel_cost}) and
    normalize the rates into a weight vector. On a homogeneous machine the
    prediction is identical across devices and the caller should fall back
    to the paper's equal split — {!homogeneous} detects that case
    exactly. *)

val homogeneous : Mgacc_gpusim.Machine.t -> num_gpus:int -> bool
(** All of the first [num_gpus] devices share one spec. *)

val uniform : int -> float array
(** [uniform n] is [n] equal weights summing to 1. *)

val device_rates :
  Mgacc_gpusim.Machine.t ->
  num_gpus:int ->
  iterations:int ->
  threads_per_iter:int ->
  iter_cost:Mgacc_gpusim.Cost.t ->
  float array
(** Predicted iteration rate (iterations/second) of each device if it ran
    the whole loop alone. A zero [iter_cost] falls back to a nominal
    memory-bound mix so heterogeneity still registers. *)

val quantize : ?grid:int -> float array -> float array
(** Snap weights to multiples of [1/grid] (default 64, at least one unit
    per device) by largest-remainder apportionment. Quantization is
    spatial hysteresis: loops whose cost vectors differ only slightly get
    the {e same} split, so a distributed array shared between them reuses
    one partitioning instead of reshaping at every alternation. *)

val seed_weights :
  Mgacc_gpusim.Machine.t ->
  num_gpus:int ->
  iterations:int ->
  threads_per_iter:int ->
  iter_cost:Mgacc_gpusim.Cost.t ->
  float array
(** Normalized and {!quantize}d {!device_rates}; exactly {!uniform} on a
    homogeneous machine. *)

val estimate_launch_seconds :
  Mgacc_gpusim.Machine.t ->
  num_gpus:int ->
  iterations:int ->
  threads_per_iter:int ->
  iter_cost:Mgacc_gpusim.Cost.t ->
  float
(** Roofline duration of one launch under a perfect split: iterations
    over the summed {!device_rates}. The fleet's shortest-job-first
    policy ranks un-measured jobs by the sum of these over a program's
    kernels — only the relative order matters. *)

val normalize : ?min_share:float -> float array -> float array
(** Scale nonnegative weights to sum to 1, clamping each share to at least
    [min_share] (default 0.01) so no device starves out of the feedback
    loop. Raises [Invalid_argument] on an all-zero or negative vector. *)
