(** Online feedback controller: EWMA of observed per-GPU iteration rates.

    After every launch of a loop the runtime reports how many iterations
    each GPU ran and how long its kernel took. The controller keeps a
    damped estimate of each device's rate and proposes the weight vector
    that would equalize finish times under those rates. Two stabilizers
    keep well-balanced workloads from churning: the EWMA damping factor
    [alpha] (weight of the newest sample) and the hysteresis threshold —
    {!predicted_gain} must exceed [hysteresis] before the planner even
    considers a re-split. *)

type knobs = {
  alpha : float;  (** EWMA weight of the newest rate sample, in (0, 1] *)
  hysteresis : float;
      (** minimum predicted fractional kernel-time gain before a re-split
          is considered (e.g. 0.02 = 2%) *)
  payoff_launches : float;
      (** how many future launches a re-split is amortized over when the
          planner weighs gain against data-movement cost *)
  min_share : float;  (** smallest weight any GPU may be assigned *)
}

val default_knobs : knobs
(** alpha = 0.5, hysteresis = 0.02, payoff_launches = 4.0,
    min_share = 0.02. *)

type t

val create : knobs -> num_gpus:int -> t

val observe : t -> iterations:int array -> seconds:float array -> unit
(** Fold one launch into the EWMA. Entries with zero iterations or
    non-positive time carry no sample and leave that device's estimate
    unchanged. *)

val rates : t -> float array option
(** Current smoothed per-GPU rates; [None] until every device has at
    least one sample (a device that never ran cannot be rated). *)

val proposed_weights : t -> float array option
(** Rates normalized into the time-equalizing weight vector. *)

val launch_time : weights:float array -> rates:float array -> float
(** Straggler time of one launch up to the iteration-count factor:
    [max_g weights.(g) / rates.(g)]. *)

val predicted_gain : t -> current:float array -> float
(** Fractional kernel-time reduction of moving from [current] to
    {!proposed_weights} under the smoothed rates:
    [(T_current - T_balanced) / T_current], 0 when unrated. *)

val samples : t -> int
(** Number of launches folded in. *)
