(** Rebalance planner: commit a re-split only when it pays for itself.

    Moving iterations between GPUs moves the partitions of every
    block-distributed array with them, so a re-split is only worth
    committing when the predicted kernel-time gain — amortized over the
    launches the controller expects the new split to serve — exceeds the
    predicted cost of shipping the displaced partition elements across the
    fabric. Movement is priced with the same peer-link model the runtime
    charges ({!Mgacc_gpusim.Fabric.transfer_time_alone}). *)

type decision =
  | Keep
  | Rebalance of {
      weights : float array;  (** the committed new split *)
      predicted_gain : float;  (** kernel seconds saved per launch *)
      predicted_move : float;  (** one-time redistribution seconds *)
    }

val move_bytes :
  current:float array -> proposed:float array -> iterations:int -> bytes_per_iter:int -> int
(** Bytes of block-distributed state that change owners under the new
    split: the displaced iteration fraction times the per-iteration
    footprint. *)

val decide :
  machine:Mgacc_gpusim.Machine.t ->
  knobs:Feedback.knobs ->
  current:float array ->
  proposed:float array ->
  rates:float array ->
  iterations:int ->
  bytes_per_iter:int ->
  decision
(** [Keep] when the fractional gain is under the hysteresis threshold or
    the amortized gain does not cover the redistribution cost. *)
